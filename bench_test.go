package repro

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment driver once per iteration and reports the
// rendered artifact through -v output on the first iteration:
//
//	go test -bench=BenchmarkTable4 -benchmem
//	go test -bench=. -benchmem           # everything (several minutes)
//
// Absolute numbers reflect the simulated substrate (see EXPERIMENTS.md);
// the comparisons' shape — who wins and by roughly what factor — is the
// reproduction target.

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/mint"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res := experiments.RunOn(e, experiments.TopoInProc)
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig01DailyVolume regenerates Fig. 1 (daily trace volume).
func BenchmarkFig01DailyVolume(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig02ServiceOverhead regenerates Fig. 2 (per-service storage and
// bandwidth overhead of tracing).
func BenchmarkFig02ServiceOverhead(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig03MissRate regenerates Fig. 3 (query miss rate under head+tail
// sampling over 30 days, two regions).
func BenchmarkFig03MissRate(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable1Commonality regenerates Table 1 (occurrence/proportion of
// inter-trace and inter-span commonality).
func BenchmarkTable1Commonality(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkFig11OverheadSweep regenerates Fig. 11 (network and storage
// overhead vs request throughput, six frameworks, two benchmarks).
func BenchmarkFig11OverheadSweep(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12QueryHits regenerates Fig. 12 (query hit numbers over 14
// days; Mint-Partial answers every query).
func BenchmarkFig12QueryHits(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable3RCA regenerates Table 3 (RCA top-1 accuracy per framework,
// 56 injected faults of the Table 2 classes).
func BenchmarkTable3RCA(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkFig13Datasets regenerates Fig. 13 (dataset descriptions).
func BenchmarkFig13Datasets(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable4Compression regenerates Table 4 (compression ratios:
// LogZip/LogReducer/CLP baselines, Mint and its two ablations, datasets A–F).
func BenchmarkTable4Compression(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkFig14LoadTests regenerates Fig. 14 (tracing overhead during the
// 14 load tests T1–T14).
func BenchmarkFig14LoadTests(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15Latency regenerates Fig. 15 (request-path overhead and
// query latency).
func BenchmarkFig15Latency(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkTable5PatternCounts regenerates Table 5 (span/trace pattern
// extraction counts on five sub-services).
func BenchmarkTable5PatternCounts(b *testing.B) { runExperiment(b, "tab5") }

// BenchmarkFig16Sensitivity regenerates Fig. 16 (similarity-threshold
// sensitivity of pattern+parameter storage).
func BenchmarkFig16Sensitivity(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkAblationBloomBuffer sweeps the Bloom buffer size design knob.
func BenchmarkAblationBloomBuffer(b *testing.B) { runExperiment(b, "abl-bloom") }

// BenchmarkAblationParamsBuffer sweeps the Params Buffer capacity and the
// eviction-induced exact→partial degradation.
func BenchmarkAblationParamsBuffer(b *testing.B) { runExperiment(b, "abl-params") }

// BenchmarkAblationParallelHAP verifies parallel HAP parity.
func BenchmarkAblationParallelHAP(b *testing.B) { runExperiment(b, "abl-hap") }

// benchCapture measures end-to-end capture throughput over the Online
// Boutique workload. workers == 0 is the serial baseline (synchronous
// Capture, single-shard backend); workers > 0 drives the concurrent
// pipeline (CaptureAsync onto the worker pool, sharded backend, batched
// async reporting) and includes the final drain in the timed region.
func benchCapture(b *testing.B, shards, workers int) {
	b.Helper()
	sys := sim.OnlineBoutique(1)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{Shards: shards, IngestWorkers: workers})
	cluster.Warmup(sim.GenTraces(sys, 300))
	traces := sim.GenTraces(sys, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.CaptureAsync(traces[i%len(traces)])
	}
	cluster.Flush()
	b.StopTimer()
	cluster.Close()
}

// benchQueryCluster captures a fixed workload and returns the cluster plus
// the captured trace IDs, for the query-path benchmarks.
func benchQueryCluster(b *testing.B, cfg mint.Config) (*mint.Cluster, []string) {
	b.Helper()
	sys := sim.OnlineBoutique(1)
	cluster := mint.NewCluster(sys.Nodes, cfg)
	cluster.Warmup(sim.GenTraces(sys, 300))
	traces := sim.GenTraces(sys, 2048)
	ids := make([]string, len(traces))
	for i, t := range traces {
		ids[i] = t.TraceID
		cluster.Capture(t)
	}
	cluster.Flush()
	return cluster, ids
}

// BenchmarkQueryCold measures uncached single-ID lookups: every query runs
// the full engine — segment-index Bloom probe, stitching, reconstruction.
func BenchmarkQueryCold(b *testing.B) {
	cluster, ids := benchQueryCluster(b, mint.Config{QueryCacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Query(ids[i%len(ids)])
	}
}

// BenchmarkQueryWarm measures repeated lookups of unchanged traces with the
// epoch-validated result cache: reconstruction is skipped entirely. Compare
// against BenchmarkQueryCold:
//
//	go test -bench='BenchmarkQuery(Cold|Warm)$' -benchtime=2s
func BenchmarkQueryWarm(b *testing.B) {
	cluster, ids := benchQueryCluster(b, mint.Config{})
	for _, id := range ids {
		_ = cluster.Query(id) // populate the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Query(ids[i%len(ids)])
	}
}

// BenchmarkQueryBatch measures BatchAnalyze over 1024-ID batches fanned out
// on the query worker pool (one worker per core).
func BenchmarkQueryBatch(b *testing.B) {
	cluster, ids := benchQueryCluster(b, mint.Config{QueryWorkers: runtime.GOMAXPROCS(0)})
	batch := ids[:1024]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = cluster.BatchAnalyze(batch)
	}
}

// BenchmarkClusterCaptureSerial is the serial ingestion baseline.
func BenchmarkClusterCaptureSerial(b *testing.B) { benchCapture(b, 0, 0) }

// BenchmarkClusterCaptureParallel runs the concurrent sharded pipeline with
// one ingest worker per core. Compare against BenchmarkClusterCaptureSerial:
//
//	go test -bench='BenchmarkClusterCapture(Serial|Parallel)$' -benchtime=2s
func BenchmarkClusterCaptureParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	benchCapture(b, 2*w, w)
}

// BenchmarkRemoteCaptureSerial is the networked-deployment capture baseline:
// the same serial capture as BenchmarkClusterCaptureSerial, but the cluster
// is dialed into a mintd-shaped loopback server, so every sampling mark and
// params report rides the RPC transport (encode, frame, syscall, ack) while
// parsing stays client-side. The delta against the in-process number is the
// cost of the wire; its allocs/op is budget-gated in CI
// (tools/benchbudget).
func BenchmarkRemoteCaptureSerial(b *testing.B) {
	sys := sim.OnlineBoutique(1)
	server := mint.NewCluster(nil, mint.Config{Shards: 4})
	srv := rpc.NewServer(server.Backend())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	cluster, err := mint.Dial(addr.String(), sys.Nodes, mint.Defaults())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer cluster.Close()
	cluster.Warmup(sim.GenTraces(sys, 300))
	traces := sim.GenTraces(sys, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.Capture(traces[i%len(traces)])
	}
	_ = cluster.Flush()
	b.StopTimer()
	if err := cluster.Err(); err != nil {
		b.Fatalf("transport error: %v", err)
	}
}

// benchRemoteQueryCluster captures a fixed workload through a dialed cluster
// against a mintd-shaped loopback server and returns the remote handle plus
// the captured trace IDs, for the remote query benchmarks.
func benchRemoteQueryCluster(b *testing.B) (*mint.Cluster, []string) {
	b.Helper()
	sys := sim.OnlineBoutique(1)
	server := mint.NewCluster(nil, mint.Config{Shards: 4})
	srv := rpc.NewServer(server.Backend())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	b.Cleanup(func() { srv.Close() })
	cluster, err := mint.Dial(addr.String(), sys.Nodes, mint.Defaults())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	b.Cleanup(func() {
		if err := cluster.Err(); err != nil {
			b.Fatalf("transport error: %v", err)
		}
		cluster.Close()
	})
	cluster.Warmup(sim.GenTraces(sys, 300))
	traces := sim.GenTraces(sys, 2048)
	ids := make([]string, len(traces))
	for i, t := range traces {
		ids[i] = t.TraceID
		_ = cluster.Capture(t)
	}
	_ = cluster.Flush()
	return cluster, ids
}

// BenchmarkRemoteQueryMany measures a 64-ID positional batch lookup over the
// multiplexed transport: the batch fans out into pipelined chunk frames
// across the connection pool instead of one lock-step round trip. Its
// allocs/op is budget-gated in CI (tools/benchbudget).
func BenchmarkRemoteQueryMany(b *testing.B) {
	cluster, ids := benchRemoteQueryCluster(b)
	batch := ids[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cluster.QueryMany(batch)
	}
}

// BenchmarkRemoteMark measures the fire-and-forget sampling-mark path over
// the transport: marks coalesce into shared envelope frames instead of
// paying one synchronous round trip each, so steady-state cost is an
// append under a lock. Its allocs/op is budget-gated in CI
// (tools/benchbudget).
func BenchmarkRemoteMark(b *testing.B) {
	cluster, ids := benchRemoteQueryCluster(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.MarkSampled(ids[i%len(ids)], "bench")
	}
	// The final flush stays in the timed region so the server-side envelope
	// application is always counted, whichever side of a timer flush the
	// last iteration lands on — keeps allocs/op stable for the CI budget.
	_ = cluster.Flush()
	b.StopTimer()
}

// BenchmarkTelemetryObserve is the self-observability hot-path guard: one
// latency-histogram observation plus the slow-op ledger gate — exactly the
// overhead every instrumented pipeline stage pays per operation. Budget-
// gated at 0 allocs/op in CI: the instrumentation must never allocate on
// the fast path (slow-path detail strings are built only past the gate).
func BenchmarkTelemetryObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_observe_seconds", "", "benchmark scratch family")
	ledger := telemetry.NewLedger(0, 250*time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := time.Duration(i%1000) * time.Microsecond
		h.Observe(d)
		if ledger.Exceeds(d) {
			ledger.Record("bench", "", d, 0, -1)
		}
	}
}
