// Command benchbudget gates allocation regressions on the hot paths: it
// parses `go test -bench -benchmem` output from stdin and fails when a
// benchmark's allocs/op exceeds its committed budget.
//
// The budget file (default tools/benchbudget/budget.txt) holds one
// "<BenchmarkName> <max-allocs-per-op>" pair per line; blank lines and
// #-comments are ignored. Budgets gate allocs/op — a count, deterministic
// on any hardware — rather than ns/op, which would flake on shared CI
// runners. Raising a budget is a reviewed diff, not a silent drift.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkClusterCaptureSerial$|BenchmarkQueryCold$' -benchmem . |
//	    go run ./tools/benchbudget
//
// Every budgeted benchmark must appear in the input; a missing one fails
// the gate (it usually means the bench was renamed and the budget silently
// stopped gating anything).
//
// -json <path> additionally writes the verdicts as a machine-readable
// "mint-bench-budget/v1" artifact (internal/benchfmt), which cmd/mintexp
// folds into BENCH_experiments.json for the perf trajectory. The artifact is
// written even when the gate fails — a failing run is exactly the one worth
// archiving.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

// budget is one benchmark's allocation ceiling.
type budget struct {
	name string
	max  int64
}

func readBudgets(path string) ([]budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []budget
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<name> <allocs>\", got %q", path, ln+1, line)
		}
		max, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("%s:%d: bad allocation budget %q", path, ln+1, fields[1])
		}
		out = append(out, budget{name: fields[0], max: max})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no budgets", path)
	}
	return out, nil
}

// parseBenchLine extracts (name, allocs/op) from one `go test -benchmem`
// result line, e.g.
//
//	BenchmarkClusterCaptureSerial-8   27939   40171 ns/op   3458 B/op   41 allocs/op
//
// ok is false for non-benchmark lines.
func parseBenchLine(line string) (name string, allocs int64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	name = fields[0]
	if i := strings.IndexByte(name, '-'); i >= 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	for i := len(fields) - 1; i > 0; i-- {
		if fields[i] == "allocs/op" {
			v, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				return "", 0, false
			}
			return name, v, true
		}
	}
	return "", 0, false
}

func main() {
	budgetPath := flag.String("budget", "tools/benchbudget/budget.txt", "budget file")
	jsonOut := flag.String("json", "", "also write the verdicts as a mint-bench-budget/v1 JSON artifact")
	flag.Parse()

	budgets, err := readBudgets(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbudget:", err)
		os.Exit(2)
	}

	measured := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		if name, allocs, ok := parseBenchLine(line); ok {
			measured[name] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchbudget: reading stdin:", err)
		os.Exit(2)
	}

	artifact := benchfmt.BudgetArtifact{Schema: benchfmt.BudgetSchema}
	failed := false
	for _, b := range budgets {
		got, ok := measured[b.name]
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchbudget: %s: not found in bench output (renamed? run it!)\n", b.name)
			failed = true
			got = -1 // recorded in the artifact as "not measured"
		case got > b.max:
			fmt.Fprintf(os.Stderr, "benchbudget: %s: %d allocs/op exceeds budget %d\n", b.name, got, b.max)
			failed = true
		default:
			fmt.Printf("benchbudget: %s: %d allocs/op within budget %d\n", b.name, got, b.max)
		}
		artifact.Entries = append(artifact.Entries, benchfmt.BudgetEntry{
			Name:         b.name,
			AllocsPerOp:  got,
			Budget:       b.max,
			WithinBudget: ok && got <= b.max,
		})
	}
	if *jsonOut != "" {
		artifact.Sort()
		if err := benchfmt.WriteFile(*jsonOut, &artifact); err != nil {
			fmt.Fprintln(os.Stderr, "benchbudget:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}
