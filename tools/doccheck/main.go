// Command doccheck verifies that every exported identifier in the given
// package directories carries a doc comment — the documentation analogue of
// gofmt. CI runs it over the public API (and whichever internal packages
// opt in) so exported surface cannot grow undocumented:
//
//	go run ./tools/doccheck ./mint .
//
// Rules (mirroring revive's "exported" rule):
//
//   - Exported funcs and methods need a doc comment.
//   - Exported types, consts and vars need a doc comment either on the
//     individual declaration or on the enclosing grouped declaration
//     (a documented const/var block covers its members).
//   - Test files and the package clause itself are out of scope (missing
//     package docs are go vet/golint territory and every package here has
//     one).
//
// Exit status is non-zero if any undocumented exported identifier is found,
// with one "file:line: identifier" diagnostic per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package dir> ...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		findings, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		bad += len(findings)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and reports exported
// identifiers lacking documentation.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s is undocumented",
			filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	return findings, nil
}

// checkDecl reports undocumented exported identifiers in one top-level
// declaration.
func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc.Text() == "" {
			report(d.Name.Pos(), funcLabel(d))
		}
	case *ast.GenDecl:
		if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
			return
		}
		blockDocumented := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc.Text() == "" && !blockDocumented {
					report(s.Name.Pos(), "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc.Text() != "" || blockDocumented {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), declWord(d.Tok)+" "+n.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported (a
// method on an unexported type is not public surface). Plain functions
// count as exported receivers.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // be conservative: flag rather than skip
		}
	}
}

// funcLabel renders a findable name for a func or method.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

// declWord names a GenDecl token for diagnostics.
func declWord(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return "type"
	}
}
