package mint_test

import (
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func newOBCluster(t *testing.T, cfg mint.Config) (*sim.System, *mint.Cluster) {
	t.Helper()
	sys := sim.OnlineBoutique(42)
	cluster := mint.NewCluster(sys.Nodes, cfg)
	return sys, cluster
}

func TestCaptureAndQueryPartialHit(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	warm := sim.GenTraces(sys, 200)
	cluster.Warmup(warm)

	traces := sim.GenTraces(sys, 500)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()

	misses := 0
	for _, tr := range traces {
		res := cluster.Query(tr.TraceID)
		if res.Kind == mint.Miss {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("Mint must answer every query at least approximately; got %d misses of %d", misses, len(traces))
	}
}

func TestSampledTraceReturnsExactHit(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))

	normal := sim.GenTraces(sys, 300)
	for _, tr := range normal {
		cluster.Capture(tr)
	}
	// A faulted trace carries an error status, which the Symptom Sampler
	// flags via the abnormal-word list (exception attribute).
	fault := &sim.Fault{Type: sim.FaultException, Service: "payment", Magnitude: 100}
	bad := sys.GenTrace(3, sim.GenOptions{Fault: fault}) // checkout hits payment
	cluster.Capture(bad)
	cluster.Flush()

	res := cluster.Query(bad.TraceID)
	if res.Kind != mint.ExactHit {
		t.Fatalf("symptomatic trace should be an exact hit, got %v", res.Kind)
	}
	if len(res.Trace.Spans) != len(bad.Spans) {
		t.Fatalf("exact reconstruction span count = %d, want %d", len(res.Trace.Spans), len(bad.Spans))
	}
	// Exact reconstruction must preserve the error status and exception.
	foundErr := false
	for _, s := range res.Trace.Spans {
		if s.Status == mint.StatusError {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatal("reconstructed trace lost the error status")
	}
}

func TestStorageFarBelowRaw(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))

	traces := sim.GenTraces(sys, 2000)
	raw := int64(0)
	for _, tr := range traces {
		raw += int64(tr.Size())
		cluster.Capture(tr)
	}
	cluster.Flush()

	storage := cluster.StorageBytes()
	if storage >= raw/5 {
		t.Fatalf("Mint storage %d should be well under 20%% of raw %d", storage, raw)
	}
	network := cluster.NetworkBytes()
	if network >= raw/2 {
		t.Fatalf("Mint network %d should be well under 50%% of raw %d", network, raw)
	}
}

func TestPatternCountsConverge(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))
	for _, tr := range sim.GenTraces(sys, 1000) {
		cluster.Capture(tr)
	}
	cluster.Flush()
	before := cluster.SpanPatternCount()
	for _, tr := range sim.GenTraces(sys, 1000) {
		cluster.Capture(tr)
	}
	cluster.Flush()
	after := cluster.SpanPatternCount()
	if before == 0 {
		t.Fatal("no span patterns extracted")
	}
	if after > before+before/10 {
		t.Fatalf("pattern library did not converge: %d -> %d", before, after)
	}
	if cluster.TopoPatternCount() == 0 {
		t.Fatal("no topo patterns extracted")
	}
}
