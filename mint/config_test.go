package mint_test

// Config validation: nonsensical knob values fail loudly from Open with an
// error naming the field, instead of being clamped silently or panicking
// somewhere deep in the backend.

import (
	"strings"
	"testing"
	"time"

	"repro/mint"
)

func TestOpenRejectsInvalidConfig(t *testing.T) {
	cases := []struct {
		name  string
		cfg   mint.Config
		field string
	}{
		{"negative shards", mint.Config{Shards: -1}, "Shards"},
		{"negative ingest workers", mint.Config{IngestWorkers: -4}, "IngestWorkers"},
		{"query workers below -1", mint.Config{QueryWorkers: -2}, "QueryWorkers"},
		{"negative snapshot threshold", mint.Config{DataDir: "x", SnapshotEveryBytes: -1}, "SnapshotEveryBytes"},
		{"negative retention", mint.Config{DataDir: "x", RetentionTTL: -time.Hour}, "RetentionTTL"},
		{"retention without data dir", mint.Config{RetentionTTL: time.Hour}, "RetentionTTL"},
		{"snapshot threshold without data dir", mint.Config{SnapshotEveryBytes: 1 << 20}, "SnapshotEveryBytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := mint.Open([]string{"n1"}, tc.cfg)
			if err == nil {
				t.Fatalf("Open(%+v) succeeded, want validation error", tc.cfg)
			}
			if !strings.Contains(err.Error(), "invalid config") || !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %s", err, tc.field)
			}
		})
	}
}

func TestOpenAcceptsDocumentedSentinels(t *testing.T) {
	// Zero values and the documented -1 QueryWorkers (serial) sentinel stay
	// valid; Shards 0 means the single-shard default.
	cases := []mint.Config{
		{},
		{Shards: 0, IngestWorkers: 0, QueryWorkers: 0},
		{QueryWorkers: -1, QueryCacheSize: -1},
		{Shards: 8, IngestWorkers: 2},
	}
	for _, cfg := range cases {
		c, err := mint.Open([]string{"n1"}, cfg)
		if err != nil {
			t.Fatalf("Open(%+v): %v", cfg, err)
		}
		c.Close()
	}
}

func TestNewClusterPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewCluster with invalid config did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invalid config") {
			t.Fatalf("panic %v does not carry the validation error", r)
		}
	}()
	mint.NewCluster([]string{"n1"}, mint.Config{Shards: -3})
}
