package mint_test

// The closed-cluster contract: Close is terminal. Every mutation returns
// the sticky ErrClosed, every read answers zero values and records it, and
// Err exposes it — identically for local and remote clusters, because a
// remote cluster's connection is gone after Close and "remains queryable"
// cannot be honored anyway.

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func TestClosedClusterOperations(t *testing.T) {
	sys := sim.OnlineBoutique(11)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{Shards: 2, IngestWorkers: 2})
	cluster.Warmup(sim.GenTraces(sys, 100))
	traces := sim.GenTraces(sys, 50)
	for _, tr := range traces {
		if err := cluster.CaptureAsync(tr); err != nil {
			t.Fatalf("CaptureAsync before Close: %v", err)
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatalf("Flush before Close: %v", err)
	}
	if err := cluster.Err(); err != nil {
		t.Fatalf("Err on a healthy cluster: %v", err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Mutations return ErrClosed and ingest nothing.
	extra := sim.GenTraces(sys, 3)
	if err := cluster.Capture(extra[0]); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Capture after Close: err = %v, want ErrClosed", err)
	}
	if err := cluster.CaptureAsync(extra[1]); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("CaptureAsync after Close: err = %v, want ErrClosed", err)
	}
	if err := cluster.MarkSampled(extra[2].TraceID, "late"); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("MarkSampled after Close: err = %v, want ErrClosed", err)
	}
	if err := cluster.Flush(); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Flush after Close: err = %v, want ErrClosed", err)
	}
	payload, err := mint.EncodeOTLP(extra[0].Spans)
	if err != nil {
		t.Fatalf("EncodeOTLP: %v", err)
	}
	if err := cluster.CaptureOTLP(extra[0].Spans[0].Node, payload); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("CaptureOTLP after Close: err = %v, want ErrClosed", err)
	}

	// Reads answer zero values and record the sticky error.
	if res := cluster.Query(traces[0].TraceID); res.Kind != mint.Miss || res.Trace != nil {
		t.Fatalf("Query after Close: %+v", res)
	}
	if res := cluster.QueryMany([]string{traces[0].TraceID}); len(res) != 1 || res[0].Kind != mint.Miss {
		t.Fatalf("QueryMany after Close: %+v", res)
	}
	if stats, miss := cluster.BatchAnalyze([]string{traces[0].TraceID}); stats.Traces != 0 || miss != 1 {
		t.Fatalf("BatchAnalyze after Close: (%+v, %d)", stats, miss)
	}
	if found := cluster.FindTraces(mint.Filter{SampledOnly: true}); found != nil {
		t.Fatalf("FindTraces after Close: %v", found)
	}
	if _, _, ok := cluster.Explore(traces[0].TraceID); ok {
		t.Fatal("Explore after Close should miss")
	}
	if err := cluster.Err(); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Err after post-Close use: %v, want ErrClosed", err)
	}

	// Close stays idempotent, returning its original (nil) error — not
	// ErrClosed, which marks misuse, not the lifecycle call itself.
	if err := cluster.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestErrNilUntilMisuse(t *testing.T) {
	cluster := mint.NewCluster([]string{"n1"}, mint.Defaults())
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A clean Close with no post-Close use is not an error state.
	if err := cluster.Err(); err != nil {
		t.Fatalf("Err after clean Close: %v", err)
	}
	cluster.Query("x")
	if err := cluster.Err(); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Err after post-Close Query: %v, want ErrClosed", err)
	}
}
