package mint_test

// Crash-recovery tests for the durable storage engine: a cluster reopened
// from a DataDir must answer Query/BatchAnalyze/FindTraces byte-identically
// to the cluster that wrote it, whether it was closed cleanly or abandoned
// after a Flush (the simulated crash). Run with -race: captures fan out
// over the ingest worker pool while the WAL appends under shard locks.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/mint"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

// renderQueries renders every query result fully — kind, sampling reason,
// and the canonical serialization of the reconstructed trace — so parity is
// byte-level, not just hit-kind agreement.
func renderQueries(cluster *mint.Cluster, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		res := cluster.Query(id)
		var b strings.Builder
		fmt.Fprintf(&b, "%s reason=%q\n", res.Kind, res.Reason)
		if res.Trace != nil {
			b.WriteString(res.Trace.Serialize())
		}
		out[i] = b.String()
	}
	return out
}

func captureWorkload(t *testing.T, dir string) (*mint.Cluster, []string) {
	t.Helper()
	sys := sim.OnlineBoutique(21)
	cluster, err := mint.Open(sys.Nodes, mint.Config{
		Shards:        4,
		IngestWorkers: 4,
		DataDir:       dir,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 500)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
		cluster.CaptureAsync(tr)
	}
	cluster.Flush()
	return cluster, ids
}

// recoveryFilters are the predicate searches the parity assertions replay.
func recoveryFilters(ids []string) []mint.Filter {
	return []mint.Filter{
		{Service: "checkout", Candidates: ids},
		{ErrorsOnly: true, Candidates: ids},
		{MinDurationUS: 50_000, Candidates: ids, Limit: 50},
		{SampledOnly: true},
	}
}

// readsSnapshot captures everything the three read paths of the acceptance
// criteria answer — Query renders, BatchAnalyze, FindTraces — plus storage
// accounting. Snapshots are taken from a cluster while it is open (a closed
// cluster answers nothing) and compared after reopen.
type readsSnapshot struct {
	renders []string
	stats   *mint.BatchStats
	miss    int
	finds   [][]mint.FoundTrace
	storage int64
}

// snapshotReads renders every read path of an open cluster.
func snapshotReads(c *mint.Cluster, ids []string) readsSnapshot {
	snap := readsSnapshot{renders: renderQueries(c, ids)}
	snap.stats, snap.miss = c.BatchAnalyze(ids)
	for _, f := range recoveryFilters(ids) {
		snap.finds = append(snap.finds, c.FindTraces(f))
	}
	snap.storage = c.StorageBytes()
	return snap
}

// assertRecoveryParity compares a pre-recorded snapshot of the writing
// cluster against one reopened from the same DataDir across all three read
// paths the acceptance criteria name: Query, BatchQuery (via BatchAnalyze)
// and FindTraces.
func assertRecoveryParity(t *testing.T, want readsSnapshot, reopened *mint.Cluster, ids []string) {
	t.Helper()
	gotRenders := renderQueries(reopened, ids)
	for i := range want.renders {
		if gotRenders[i] != want.renders[i] {
			t.Fatalf("trace %s diverged after reopen:\nlive:\n%s\nreopened:\n%s",
				ids[i], want.renders[i], gotRenders[i])
		}
	}

	gotStats, gotMiss := reopened.BatchAnalyze(ids)
	if want.miss != gotMiss || !reflect.DeepEqual(want.stats, gotStats) {
		t.Fatalf("BatchAnalyze diverged after reopen: live (%+v, %d) vs reopened (%+v, %d)",
			want.stats, want.miss, gotStats, gotMiss)
	}

	for i, f := range recoveryFilters(ids) {
		got := reopened.FindTraces(f)
		if !reflect.DeepEqual(want.finds[i], got) {
			t.Fatalf("FindTraces(%+v) diverged after reopen:\nlive: %v\nreopened: %v", f, want.finds[i], got)
		}
	}

	if g := reopened.StorageBytes(); want.storage != g {
		t.Fatalf("storage bytes diverged after reopen: live %d, reopened %d", want.storage, g)
	}
}

func TestCrashRecoveryParityAfterClose(t *testing.T) {
	dir := t.TempDir()
	live, ids := captureWorkload(t, dir)
	// Snapshot the reads before Close — a closed cluster answers nothing.
	want := snapshotReads(live, ids)
	if err := live.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened, err := mint.Open(live.Nodes(), mint.Config{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	assertRecoveryParity(t, want, reopened, ids)
}

func TestCrashRecoveryParityAfterFlushOnly(t *testing.T) {
	dir := t.TempDir()
	// The simulated crash: Flush makes the WAL durable, then the cluster is
	// abandoned without Close. Reopen with a different shard count for good
	// measure — the data directory is layout-independent.
	live, ids := captureWorkload(t, dir)
	want := snapshotReads(live, ids)
	reopened, err := mint.Open(live.Nodes(), mint.Config{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	assertRecoveryParity(t, want, reopened, ids)
}

// TestCloseFlushesPendingAsyncBatches is the regression test for
// close-is-flush: captures still sitting in the async ingest queue and the
// reporters' batch buffers when Close is called must reach disk, and Close
// must stay idempotent around it.
func TestCloseFlushesPendingAsyncBatches(t *testing.T) {
	dir := t.TempDir()
	sys := sim.OnlineBoutique(9)
	cluster, err := mint.Open(sys.Nodes, mint.Config{Shards: 2, IngestWorkers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 100))
	traces := sim.GenTraces(sys, 200)
	for _, tr := range traces {
		cluster.CaptureAsync(tr) // no Flush: Close alone must drain and persist
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	reopened, err := mint.Open(sys.Nodes, mint.Config{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for _, tr := range traces {
		if res := reopened.Query(tr.TraceID); res.Kind == mint.Miss {
			t.Fatalf("trace %s enqueued before Close was not persisted", tr.TraceID)
		}
	}
	// The persisted state must also be stable across a second close/reopen
	// cycle: close-is-flush leaves nothing behind that a reopen would lose.
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	want := snapshotReads(reopened, ids)
	if err := reopened.Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
	again, err := mint.Open(sys.Nodes, mint.Config{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer again.Close()
	assertRecoveryParity(t, want, again, ids)
}

func TestRetentionTTLDropsOldTraces(t *testing.T) {
	dir := t.TempDir()
	sys := sim.OnlineBoutique(5)
	cluster, err := mint.Open(sys.Nodes, mint.Config{DataDir: dir, RetentionTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 100))
	traces := sim.GenTraces(sys, 50)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()
	if res := cluster.Query(traces[0].TraceID); res.Kind == mint.Miss {
		t.Fatal("trace missed before TTL elapsed")
	}
	time.Sleep(60 * time.Millisecond)
	if n := cluster.Backend().SweepExpired(); n == 0 {
		t.Fatal("sweep after TTL dropped nothing")
	}
	if res := cluster.Query(traces[0].TraceID); res.Kind != mint.Miss {
		t.Fatalf("expired trace still answers %v", res.Kind)
	}
	if cluster.SpanPatternCount() == 0 {
		t.Fatal("retention must keep pattern libraries")
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOpenSurfacesPersistenceErrors(t *testing.T) {
	// A DataDir that collides with an existing file cannot be created.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "not-a-dir")
	if err := writeFile(blocked, "occupied"); err != nil {
		t.Fatal(err)
	}
	if _, err := mint.Open([]string{"n1"}, mint.Config{DataDir: blocked}); err == nil {
		t.Fatal("Open with an unusable DataDir must fail")
	}
}
