package mint_test

// Crash-recovery tests for the durable storage engine: a cluster reopened
// from a DataDir must answer Query/BatchAnalyze/FindTraces byte-identically
// to the cluster that wrote it, whether it was closed cleanly or abandoned
// after a Flush (the simulated crash). Run with -race: captures fan out
// over the ingest worker pool while the WAL appends under shard locks.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/mint"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

// renderQueries renders every query result fully — kind, sampling reason,
// and the canonical serialization of the reconstructed trace — so parity is
// byte-level, not just hit-kind agreement.
func renderQueries(cluster *mint.Cluster, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		res := cluster.Query(id)
		var b strings.Builder
		fmt.Fprintf(&b, "%s reason=%q\n", res.Kind, res.Reason)
		if res.Trace != nil {
			b.WriteString(res.Trace.Serialize())
		}
		out[i] = b.String()
	}
	return out
}

func captureWorkload(t *testing.T, dir string) (*mint.Cluster, []string) {
	t.Helper()
	sys := sim.OnlineBoutique(21)
	cluster, err := mint.Open(sys.Nodes, mint.Config{
		Shards:        4,
		IngestWorkers: 4,
		DataDir:       dir,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 500)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
		cluster.CaptureAsync(tr)
	}
	cluster.Flush()
	return cluster, ids
}

// assertRecoveryParity compares the live cluster against one reopened from
// the same DataDir across all three read paths the acceptance criteria
// name: Query, BatchQuery (via BatchAnalyze) and FindTraces.
func assertRecoveryParity(t *testing.T, live, reopened *mint.Cluster, ids []string) {
	t.Helper()
	wantRenders := renderQueries(live, ids)
	gotRenders := renderQueries(reopened, ids)
	for i := range wantRenders {
		if gotRenders[i] != wantRenders[i] {
			t.Fatalf("trace %s diverged after reopen:\nlive:\n%s\nreopened:\n%s",
				ids[i], wantRenders[i], gotRenders[i])
		}
	}

	wantStats, wantMiss := live.BatchAnalyze(ids)
	gotStats, gotMiss := reopened.BatchAnalyze(ids)
	if wantMiss != gotMiss || !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("BatchAnalyze diverged after reopen: live (%+v, %d) vs reopened (%+v, %d)",
			wantStats, wantMiss, gotStats, gotMiss)
	}

	filters := []mint.Filter{
		{Service: "checkout", Candidates: ids},
		{ErrorsOnly: true, Candidates: ids},
		{MinDurationUS: 50_000, Candidates: ids, Limit: 50},
		{SampledOnly: true},
	}
	for _, f := range filters {
		want := live.FindTraces(f)
		got := reopened.FindTraces(f)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("FindTraces(%+v) diverged after reopen:\nlive: %v\nreopened: %v", f, want, got)
		}
	}

	if w, g := live.StorageBytes(), reopened.StorageBytes(); w != g {
		t.Fatalf("storage bytes diverged after reopen: live %d, reopened %d", w, g)
	}
}

func TestCrashRecoveryParityAfterClose(t *testing.T) {
	dir := t.TempDir()
	live, ids := captureWorkload(t, dir)
	if err := live.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// live remains queryable after Close — it is the parity reference.
	reopened, err := mint.Open(live.Nodes(), mint.Config{Shards: 4, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	assertRecoveryParity(t, live, reopened, ids)
}

func TestCrashRecoveryParityAfterFlushOnly(t *testing.T) {
	dir := t.TempDir()
	// The simulated crash: Flush makes the WAL durable, then the cluster is
	// abandoned without Close. Reopen with a different shard count for good
	// measure — the data directory is layout-independent.
	live, ids := captureWorkload(t, dir)
	reopened, err := mint.Open(live.Nodes(), mint.Config{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	assertRecoveryParity(t, live, reopened, ids)
}

// TestCloseFlushesPendingAsyncBatches is the regression test for
// close-is-flush: captures still sitting in the async ingest queue and the
// reporters' batch buffers when Close is called must reach disk, and Close
// must stay idempotent around it.
func TestCloseFlushesPendingAsyncBatches(t *testing.T) {
	dir := t.TempDir()
	sys := sim.OnlineBoutique(9)
	cluster, err := mint.Open(sys.Nodes, mint.Config{Shards: 2, IngestWorkers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 100))
	traces := sim.GenTraces(sys, 200)
	for _, tr := range traces {
		cluster.CaptureAsync(tr) // no Flush: Close alone must drain and persist
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	reopened, err := mint.Open(sys.Nodes, mint.Config{Shards: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	for _, tr := range traces {
		if res := reopened.Query(tr.TraceID); res.Kind == mint.Miss {
			t.Fatalf("trace %s enqueued before Close was not persisted", tr.TraceID)
		}
	}
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	assertRecoveryParity(t, cluster, reopened, ids)
}

func TestRetentionTTLDropsOldTraces(t *testing.T) {
	dir := t.TempDir()
	sys := sim.OnlineBoutique(5)
	cluster, err := mint.Open(sys.Nodes, mint.Config{DataDir: dir, RetentionTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 100))
	traces := sim.GenTraces(sys, 50)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()
	if res := cluster.Query(traces[0].TraceID); res.Kind == mint.Miss {
		t.Fatal("trace missed before TTL elapsed")
	}
	time.Sleep(60 * time.Millisecond)
	if n := cluster.Backend().SweepExpired(); n == 0 {
		t.Fatal("sweep after TTL dropped nothing")
	}
	if res := cluster.Query(traces[0].TraceID); res.Kind != mint.Miss {
		t.Fatalf("expired trace still answers %v", res.Kind)
	}
	if cluster.SpanPatternCount() == 0 {
		t.Fatal("retention must keep pattern libraries")
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOpenSurfacesPersistenceErrors(t *testing.T) {
	// A DataDir that collides with an existing file cannot be created.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "not-a-dir")
	if err := writeFile(blocked, "occupied"); err != nil {
		t.Fatal(err)
	}
	if _, err := mint.Open([]string{"n1"}, mint.Config{DataDir: blocked}); err == nil {
		t.Fatal("Open with an unusable DataDir must fail")
	}
}
