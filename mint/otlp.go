package mint

import (
	"repro/internal/otlp"
	"repro/internal/trace"
)

// CaptureOTLP ingests an OTLP/JSON export payload received on one node:
// the payload's spans are decoded, grouped into per-trace sub-traces and
// fed to that node's agent — the protocol-decoupled ingestion path of
// §4.1. Sampling decisions propagate cluster-wide as with Capture.
//
// Unlike Capture (which sees a complete trace), an OTLP payload carries
// whatever the local SDK exported; Mint's per-node design needs nothing
// more.
func (c *Cluster) CaptureOTLP(node string, payload []byte) error {
	spans, err := otlp.Decode(payload, node)
	if err != nil {
		return err
	}
	col, ok := c.collectors[node]
	if !ok {
		return errUnknownNode(node)
	}
	for _, st := range trace.BuildSubTraces(node, spans) {
		res := col.Ingest(st)
		if len(res.Samples) > 0 {
			c.markSampled(st.TraceID, res.Samples[0].Reason)
		}
	}
	return nil
}

// EncodeOTLP renders spans as an OTLP/JSON export payload, for shipping
// Mint-reconstructed traces back into OpenTelemetry tooling.
func EncodeOTLP(spans []*Span) ([]byte, error) { return otlp.Encode(spans) }

type errUnknownNode string

func (e errUnknownNode) Error() string { return "mint: unknown node " + string(e) }
