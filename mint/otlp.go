package mint

import (
	"repro/internal/otlp"
	"repro/internal/trace"
)

// CaptureOTLP ingests an OTLP/JSON export payload received on one node:
// the payload's spans are decoded, grouped into per-trace sub-traces and
// fed to that node's agent — the protocol-decoupled ingestion path of
// §4.1. Sampling decisions propagate cluster-wide as with Capture.
//
// Unlike Capture (which sees a complete trace), an OTLP payload carries
// whatever the local SDK exported; Mint's per-node design needs nothing
// more.
// On a closed cluster it ingests nothing and returns ErrClosed.
func (c *Cluster) CaptureOTLP(node string, payload []byte) error {
	_, err := c.captureOTLPCounted(node, payload)
	return err
}

// captureOTLPCounted is CaptureOTLP returning the span count ingested, for
// the HTTP endpoint's metrics.
func (c *Cluster) captureOTLPCounted(node string, payload []byte) (int, error) {
	if err := c.checkOpen(); err != nil {
		return 0, err
	}
	spans, err := otlp.Decode(payload, node)
	if err != nil {
		return 0, err
	}
	col, ok := c.collectors[node]
	if !ok {
		return 0, errUnknownNode(node)
	}
	for _, st := range trace.BuildSubTraces(node, spans) {
		res := col.Ingest(st)
		if len(res.Samples) > 0 {
			// The collector already delivered the mark to the store; run
			// the coherence fan-out only.
			c.notifySampled(st.TraceID, res.Samples[0].Reason)
		}
	}
	return len(spans), nil
}

// EncodeOTLP renders spans as an OTLP/JSON export payload, for shipping
// Mint-reconstructed traces back into OpenTelemetry tooling.
func EncodeOTLP(spans []*Span) ([]byte, error) { return otlp.Encode(spans) }

type errUnknownNode string

func (e errUnknownNode) Error() string { return "mint: unknown node " + string(e) }
