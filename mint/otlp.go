package mint

import (
	"time"

	"repro/internal/otlp"
	"repro/internal/otlp/pb"
	"repro/internal/trace"
)

// CaptureOTLP ingests an OTLP/JSON export payload received on one node:
// the payload's spans are decoded, grouped into per-trace sub-traces and
// fed to that node's agent — the protocol-decoupled ingestion path of
// §4.1. Sampling decisions propagate cluster-wide as with Capture.
//
// Unlike Capture (which sees a complete trace), an OTLP payload carries
// whatever the local SDK exported; Mint's per-node design needs nothing
// more.
// On a closed cluster it ingests nothing and returns ErrClosed.
func (c *Cluster) CaptureOTLP(node string, payload []byte) error {
	_, err := c.captureOTLPCounted(node, payload)
	return err
}

// captureOTLPCounted is CaptureOTLP returning the span count ingested, for
// the HTTP endpoint's metrics.
func (c *Cluster) captureOTLPCounted(node string, payload []byte) (int, error) {
	if err := c.checkOpen(); err != nil {
		return 0, err
	}
	reqStart := time.Now()
	spans, err := otlp.Decode(payload, node)
	decodeDone := time.Now()
	c.histDecodeJSON.Observe(decodeDone.Sub(reqStart))
	if err != nil {
		return 0, err
	}
	n, err := c.captureSpans(node, spans)
	c.observeOTLP("json", len(payload), reqStart, decodeDone, n)
	return n, err
}

// CaptureOTLPProto ingests an OTLP/protobuf export payload
// (ExportTraceServiceRequest, the binary encoding stock SDK exporters emit)
// received on one node. It is the zero-allocation twin of CaptureOTLP: the
// payload is decoded by a pooled wire walker whose scratch spans feed the
// capture path and are recycled before returning, and the low-cardinality
// strings (service names, span names, attribute keys) resolve through the
// cluster's intern dictionary. A payload ingested here and its OTLP/JSON
// equivalent ingested through CaptureOTLP produce byte-identical query
// results.
// On a closed cluster it ingests nothing and returns ErrClosed.
func (c *Cluster) CaptureOTLPProto(node string, payload []byte) error {
	_, err := c.captureOTLPProtoCounted(node, payload)
	return err
}

// captureOTLPProtoCounted is CaptureOTLPProto returning the span count
// ingested, for the HTTP endpoint's metrics.
func (c *Cluster) captureOTLPProtoCounted(node string, payload []byte) (int, error) {
	if err := c.checkOpen(); err != nil {
		return 0, err
	}
	reqStart := time.Now()
	dec, _ := c.otlpDecoders.Get().(*pb.Decoder)
	if dec == nil {
		dec = pb.NewDecoder(c.otlpDict)
	}
	spans, err := dec.Decode(payload, node)
	decodeDone := time.Now()
	c.histDecodeProto.Observe(decodeDone.Sub(reqStart))
	if err != nil {
		c.otlpDecoders.Put(dec)
		return 0, err
	}
	n, err := c.captureSpans(node, spans)
	// The agents copied what they keep (parsed patterns and immutable
	// strings, never the span structs or attribute maps), so the decoder's
	// scratch can recycle immediately.
	c.otlpDecoders.Put(dec)
	c.observeOTLP("proto", len(payload), reqStart, decodeDone, n)
	return n, err
}

// captureSpans feeds decoded OTLP spans to one node's collector, grouped
// into per-trace sub-traces — the ingest tail shared by both front-door
// encodings, which is what keeps their query results byte-identical.
func (c *Cluster) captureSpans(node string, spans []*trace.Span) (int, error) {
	col, ok := c.collectors[node]
	if !ok {
		return 0, errUnknownNode(node)
	}
	for _, st := range trace.BuildSubTraces(node, spans) {
		res := col.Ingest(st)
		if len(res.Samples) > 0 {
			// The collector already delivered the mark to the store; run
			// the coherence fan-out only.
			c.notifySampled(st.TraceID, res.Samples[0].Reason)
		}
	}
	return len(spans), nil
}

// observeOTLP records one OTLP ingest's capture-tail latency (the decode
// half was observed at its call site, where the error path still needs the
// histogram fed), gates the slow-op ledger, and — under Config.SelfTrace —
// renders the request as an ingest-request → decode → shard-apply self
// trace.
func (c *Cluster) observeOTLP(encoding string, payloadBytes int, reqStart, decodeDone time.Time, spans int) {
	capDone := time.Now()
	d := capDone.Sub(decodeDone)
	c.histCapture.Observe(d)
	if c.slow.Exceeds(d) {
		c.slow.Record("otlp-"+encoding, "", d, int64(payloadBytes), -1)
	}
	if c.selfTr != nil {
		c.selfTr.observeIngest(encoding, reqStart, decodeDone, capDone, spans)
	}
}

// EncodeOTLP renders spans as an OTLP/JSON export payload, for shipping
// Mint-reconstructed traces back into OpenTelemetry tooling.
func EncodeOTLP(spans []*Span) ([]byte, error) { return otlp.Encode(spans) }

// EncodeOTLPProto renders spans as an OTLP/protobuf export payload — the
// binary twin of EncodeOTLP, byte-compatible with what an SDK exporter
// would POST as application/x-protobuf.
func EncodeOTLPProto(spans []*Span) ([]byte, error) { return pb.MarshalSpans(spans) }

type errUnknownNode string

func (e errUnknownNode) Error() string { return "mint: unknown node " + string(e) }
