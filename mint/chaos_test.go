package mint_test

// Chaos parity: the acceptance bar for the fault-tolerant transport. A
// client driven through a fault-injection proxy under an aggressive
// schedule — connection resets, frames torn mid-payload, refused redials,
// periodic full partitions — must converge, once the schedule calms, to a
// state byte-identical to a fault-free in-process run of the same workload:
// no lost ingest (the client journal replays), no double-applied ingest
// (the server dedup window absorbs replays of already-applied envelopes).
// Run with -race: redials, journal replay and the fault schedule all race
// the capture path.

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/mint"
)

// chaosTimers shortens the client's redial/flush machinery so the fault
// window exercises many redial cycles, while leaving the retry deadline
// generous enough that post-calm convergence never races it.
func chaosTimers(t *testing.T) {
	t.Helper()
	restore := rpc.SetTimersForTest(rpc.TestTimers{
		Flush:         5 * time.Millisecond,
		RetryDeadline: 20 * time.Second,
		RedialBase:    5 * time.Millisecond,
		RedialMax:     50 * time.Millisecond,
		RedialDial:    500 * time.Millisecond,
		RedialTick:    2 * time.Millisecond,
	})
	t.Cleanup(restore)
}

func TestChaosProxyParity(t *testing.T) {
	chaosTimers(t)
	sys := sim.OnlineBoutique(91)
	warm := sim.GenTraces(sys, 150)
	traces := sim.GenTraces(sys, 400)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	// Concurrent-parity discipline: deterministic hash-based head sampling
	// plus explicit marks, so sampling decisions cannot depend on the
	// timing perturbations the fault schedule injects.
	cfg := mint.Config{DisableSamplers: true, HeadSampleRate: 0.15}

	// Fault-free serial reference.
	inprocCfg := cfg
	inprocCfg.Shards = 4
	inproc := mint.NewCluster(sys.Nodes, inprocCfg)
	defer inproc.Close()
	inproc.Warmup(warm)
	for i, tr := range traces {
		if err := inproc.Capture(tr); err != nil {
			t.Fatalf("in-process Capture: %v", err)
		}
		if i%10 == 0 {
			inproc.MarkSampled(tr.TraceID, "chaos-parity")
		}
	}
	if err := inproc.Flush(); err != nil {
		t.Fatalf("in-process Flush: %v", err)
	}

	// The same workload, dialed through the chaos proxy. The schedule is
	// aggressive on the connection level (a quarter of redials refused,
	// partitions sweeping all live connections every 120ms) and moderate on
	// the byte level, so traffic flows — brokenly — throughout.
	server := startMintd(t, t.TempDir(), 4)
	defer server.stop(t)
	px, err := chaos.New(server.addr, chaos.Config{
		Seed:           20250807,
		ResetProb:      0.01,
		TruncateProb:   0.02,
		DelayProb:      0.05,
		MaxDelay:       2 * time.Millisecond,
		RefuseProb:     0.25,
		PartitionEvery: 120 * time.Millisecond,
		PartitionFor:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos.New: %v", err)
	}
	defer px.Close()

	// The initial Dial is deliberately fail-fast (no pool, no journal yet),
	// so under a schedule refusing a quarter of connections it can lose the
	// roll; retry it the way an operator's supervisor would.
	remoteCfg := cfg
	remoteCfg.RemoteConns = 3
	var remote *mint.Cluster
	for attempt := 0; ; attempt++ {
		remote, err = mint.Dial(px.Addr(), sys.Nodes, remoteCfg)
		if err == nil {
			break
		}
		if attempt >= 30 {
			t.Fatalf("Dial through proxy never succeeded: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer remote.Close()
	remote.Warmup(warm)

	// Drive captures and marks through the storm. Captures are local agent
	// work plus fire-and-forget report envelopes, so faults never surface
	// here — they surface as journal growth and redials. Pace the drive so
	// it spans several partition windows.
	for i, tr := range traces {
		if err := remote.Capture(tr); err != nil {
			t.Fatalf("remote Capture under chaos: %v", err)
		}
		if i%10 == 0 {
			remote.MarkSampled(tr.TraceID, "chaos-parity")
		}
		if i%4 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// Let the journal fight the schedule for a few more partition windows:
	// replay under fire is the interesting phase.
	time.Sleep(500 * time.Millisecond)

	// Calm the proxy and converge. Flush is the barrier: it drains the
	// client journal through (now faithful) redialed connections.
	px.Calm()
	if err := remote.Flush(); err != nil {
		t.Fatalf("Flush after calm: %v", err)
	}

	// The schedule must actually have been aggressive: redials happened
	// (more accepts than the pool size), connections were refused and
	// reset, and the combined fault count covers well over 20% of the
	// connection-level traffic.
	accepted, refused, resets, truncs := px.Accepted(), px.Refused(), px.Resets(), px.Truncations()
	t.Logf("chaos: accepted=%d refused=%d resets=%d truncations=%d delays=%d; server shed=%d dedup=%d",
		accepted, refused, resets, truncs, px.Delays(), server.srv.Shed(), server.srv.DedupHits())
	if accepted <= int64(remoteCfg.RemoteConns) {
		t.Fatalf("no redial reached the proxy: accepted=%d with a pool of %d", accepted, remoteCfg.RemoteConns)
	}
	if refused == 0 || resets == 0 {
		t.Fatalf("fault schedule injected too little: refused=%d resets=%d", refused, resets)
	}
	if faults := refused + resets + truncs; faults*5 < accepted {
		t.Fatalf("fault coverage below 20%%: %d faults over %d connections", faults, accepted)
	}

	// The acceptance bar: every read path byte-identical to the fault-free
	// run (no loss, no double-apply), and no sticky transport error.
	assertRemoteParity(t, "chaos", inproc, remote, ids)

	// Ingest-side counters must agree too: the pattern stores saw each
	// envelope exactly once despite replays.
	wb, rb := inproc.Backend(), server.cluster.Backend()
	if w, g := wb.SpanPatternCount(), rb.SpanPatternCount(); w != g {
		t.Fatalf("span pattern count diverged: in-process %d, chaos %d", w, g)
	}
	if w, g := wb.TopoPatternCount(), rb.TopoPatternCount(); w != g {
		t.Fatalf("topo pattern count diverged: in-process %d, chaos %d", w, g)
	}

	// Redialed connections keep carrying traffic after the storm: fresh
	// sync reads answer without error.
	if res := remote.Query(ids[0]); res.Kind == mint.Miss {
		t.Fatal("post-calm query missed a captured trace")
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("transport latched an error across the storm: %v", err)
	}
}
