package mint

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/collector"
	"repro/internal/rpc"
)

// store is the backend surface a Cluster works against: the report sink the
// collectors deliver into plus the query, stats and persistence surface the
// read path uses. Two implementations exist — the in-process
// *backend.Backend (Open/NewCluster) and the *rpc.Client network transport
// (Dial) — and the Cluster code is identical over both, which is what the
// loopback parity tests pin down.
type store interface {
	collector.Sink

	// Query answers one trace lookup.
	Query(traceID string) backend.QueryResult
	// QueryMany answers one query per trace ID, positionally.
	QueryMany(traceIDs []string) []backend.QueryResult
	// BatchQuery aggregates many traces, returning stats and miss count.
	BatchQuery(traceIDs []string) (*backend.BatchStats, int)
	// FindTraces runs a predicate search.
	FindTraces(f backend.Filter) []backend.FoundTrace
	// FindAnalyze runs a predicate search plus aggregation in one pass.
	FindAnalyze(f backend.Filter) (*backend.BatchStats, []backend.FoundTrace)

	// StorageBytes returns total storage and its pattern/Bloom/params split.
	StorageBytes() (total, patterns, blooms, params int64)
	// SpanPatternCount returns the distinct span pattern count.
	SpanPatternCount() int
	// TopoPatternCount returns the distinct topo pattern count.
	TopoPatternCount() int
	// ShardCount returns the backend's shard count.
	ShardCount() int

	// FlushPersistence forces captured state durable (a no-op for a
	// memory-only local backend).
	FlushPersistence() error
	// ClosePersistence detaches the durable store; for the network
	// transport it flushes the server durable and closes the connection.
	ClosePersistence() error
}

// Both deployments must keep satisfying the Cluster's store contract.
var (
	_ store = (*backend.Backend)(nil)
	_ store = (*rpc.Client)(nil)
)

// validate rejects configurations that earlier versions clamped or let
// panic deep inside the backend. It is called by Open, NewCluster and Dial
// before any resource is created.
func (c Config) validate() error {
	bad := func(field, why string) error {
		return fmt.Errorf("mint: invalid config: %s %s", field, why)
	}
	if c.Shards < 0 {
		return bad("Shards", fmt.Sprintf("= %d; want >= 0 (0 means the single-shard default)", c.Shards))
	}
	if c.IngestWorkers < 0 {
		return bad("IngestWorkers", fmt.Sprintf("= %d; want >= 0 (0 keeps ingestion synchronous)", c.IngestWorkers))
	}
	if c.QueryWorkers < -1 {
		return bad("QueryWorkers", fmt.Sprintf("= %d; want >= -1 (-1 forces serial queries, 0 sizes to GOMAXPROCS)", c.QueryWorkers))
	}
	if c.SnapshotEveryBytes < 0 {
		return bad("SnapshotEveryBytes", fmt.Sprintf("= %d; want >= 0 (0 takes the default threshold)", c.SnapshotEveryBytes))
	}
	if c.RetentionTTL < 0 {
		return bad("RetentionTTL", fmt.Sprintf("= %v; want >= 0 (0 keeps everything forever)", c.RetentionTTL))
	}
	if c.RemoteConns < 0 {
		return bad("RemoteConns", fmt.Sprintf("= %d; want >= 0 (0 takes DefaultRemoteConns)", c.RemoteConns))
	}
	if c.DataDir == "" {
		if c.RetentionTTL != 0 {
			return bad("RetentionTTL", "requires DataDir: retention sweeps run on the durable store")
		}
		if c.SnapshotEveryBytes != 0 {
			return bad("SnapshotEveryBytes", "requires DataDir: compaction rewrites on-disk snapshots")
		}
	}
	return nil
}
