package mint_test

// OTLP/JSON golden tests for the HTTP ingestion endpoint: recorded OTel
// SDK-shaped payloads (testdata/otlp_*.json) POSTed to /v1/traces must
// produce exactly the patterns, parameters and query answers that directly
// Capture-ing the equivalent traces produces, and the decoded span mapping
// itself is pinned by a committed golden snapshot
// (testdata/otlp_decoded.golden).

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/otlp"
	"repro/mint"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden snapshots")

// goldenPayloads lists the recorded payload files and the node each was
// exported from.
var goldenPayloads = []struct {
	file string
	node string
}{
	{"otlp_node1.json", "node-1"},
	{"otlp_node2.json", "node-2"},
}

func readPayload(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("read payload: %v", err)
	}
	return b
}

// decodedTraces decodes every golden payload and regroups the spans into
// complete traces (the form Capture ingests), preserving first-seen order.
func decodedTraces(t *testing.T) []*mint.Trace {
	t.Helper()
	byID := map[string]*mint.Trace{}
	var order []*mint.Trace
	for _, p := range goldenPayloads {
		spans, err := otlp.Decode(readPayload(t, p.file), p.node)
		if err != nil {
			t.Fatalf("decode %s: %v", p.file, err)
		}
		for _, sp := range spans {
			tr, ok := byID[sp.TraceID]
			if !ok {
				tr = &mint.Trace{TraceID: sp.TraceID}
				byID[sp.TraceID] = tr
				order = append(order, tr)
			}
			tr.Spans = append(tr.Spans, sp)
		}
	}
	return order
}

// TestOTLPDecodeGolden pins the OTLP→Mint span mapping: the canonical
// serialization of every decoded span must match the committed snapshot.
// Run with -update-golden after an intentional mapping change.
func TestOTLPDecodeGolden(t *testing.T) {
	var b strings.Builder
	for _, tr := range decodedTraces(t) {
		for _, sp := range tr.Spans {
			b.WriteString(sp.Serialize())
			b.WriteByte('\n')
		}
	}
	goldenPath := filepath.Join("testdata", "otlp_decoded.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if b.String() != string(want) {
		t.Fatalf("decoded spans diverged from golden snapshot:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestOTLPEndpointMatchesDirectCapture is the golden parity test: POSTing
// the recorded payloads to the HTTP endpoint must leave the backend in
// exactly the state direct Capture of the equivalent traces produces —
// same patterns, same params, same query answers, same storage accounting.
func TestOTLPEndpointMatchesDirectCapture(t *testing.T) {
	nodes := []string{"node-1", "node-2"}

	// Deployment A: the HTTP endpoint.
	viaHTTP := mint.NewCluster(nodes, mint.Defaults())
	defer viaHTTP.Close()
	handler := mint.NewHTTPHandler(viaHTTP, "node-1")
	srv := httptest.NewServer(handler)
	defer srv.Close()

	for _, p := range goldenPayloads {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/traces", bytes.NewReader(readPayload(t, p.file)))
		if err != nil {
			t.Fatalf("build request: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Mint-Node", p.node)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", p.file, err)
		}
		body := make([]byte, 256)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", p.file, resp.StatusCode, body[:n])
		}
		if !strings.Contains(string(body[:n]), "partialSuccess") {
			t.Fatalf("POST %s: unexpected body %q", p.file, body[:n])
		}
	}
	viaHTTP.Flush()

	// Deployment B: direct Capture of the equivalent traces.
	direct := mint.NewCluster(nodes, mint.Defaults())
	defer direct.Close()
	traces := decodedTraces(t)
	for _, tr := range traces {
		if err := direct.Capture(tr); err != nil {
			t.Fatalf("Capture: %v", err)
		}
	}
	direct.Flush()

	// Patterns and storage accounting must agree exactly.
	if w, g := direct.SpanPatternCount(), viaHTTP.SpanPatternCount(); w != g {
		t.Fatalf("span patterns: direct %d, via HTTP %d", w, g)
	}
	if w, g := direct.TopoPatternCount(), viaHTTP.TopoPatternCount(); w != g {
		t.Fatalf("topo patterns: direct %d, via HTTP %d", w, g)
	}
	wp, wb, wpar := direct.StorageBreakdown()
	gp, gb, gpar := viaHTTP.StorageBreakdown()
	if wp != gp || wb != gb || wpar != gpar {
		t.Fatalf("storage breakdown: direct (%d,%d,%d), via HTTP (%d,%d,%d)", wp, wb, wpar, gp, gb, gpar)
	}

	// Every trace answers byte-identically, sampling reasons included.
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	want, got := renderQueries(direct, ids), renderQueries(viaHTTP, ids)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trace %s diverged:\ndirect:\n%s\nvia HTTP:\n%s", ids[i], want[i], got[i])
		}
	}
}

// TestOTLPEndpointErrors pins the endpoint's failure responses and the ops
// surface (/healthz, /metricsz).
func TestOTLPEndpointErrors(t *testing.T) {
	cluster := mint.NewCluster([]string{"node-1"}, mint.Defaults())
	handler := mint.NewHTTPHandler(cluster, "node-1")
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf := new(strings.Builder)
		b := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(b)
			buf.Write(b[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	// Malformed JSON → 400.
	resp, err := http.Post(srv.URL+"/v1/traces", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed payload: status %d, want 400", resp.StatusCode)
	}

	// Unknown node → 400.
	payload := readPayload(t, "otlp_node2.json")
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/traces?node=nope", bytes.NewReader(payload))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown node: status %d, want 400", resp.StatusCode)
	}

	// GET on the ingest path → 405.
	if code, _ := get("/v1/traces"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/traces: status %d, want 405", code)
	}

	// A good payload through the default node, then metrics reflect it.
	resp, err = http.Post(srv.URL+"/v1/traces", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good payload: status %d", resp.StatusCode)
	}
	code, metrics := get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	for _, want := range []string{
		"mint_otlp_requests_total 3",
		"mint_otlp_errors_total 2",
		"mint_otlp_spans_total 2",
		"mint_span_patterns",
		`mint_storage_bytes{kind="total"}`,
		"mint_backend_shards 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, metrics)
		}
	}

	// Draining: healthz → 503 (stop routing here), ingest → 429 with a
	// Retry-After (exporters back off and resend), queries keep answering.
	handler.SetDraining(true)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining: %d %q, want 503 draining", code, body)
	}
	resp, err = http.Post(srv.URL+"/v1/traces", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest while draining: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed carried no Retry-After hint")
	}
	code, metrics = get("/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz while draining: status %d (a drain is not an outage for reads)", code)
	}
	for _, want := range []string{"mint_draining 1", "mint_otlp_shed_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metricsz missing %q while draining:\n%s", want, metrics)
		}
	}
	handler.SetDraining(false)
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after drain cleared: status %d, want 200", code)
	}

	// Closed cluster: ingest → 503, healthz → 503.
	cluster.Close()
	resp, err = http.Post(srv.URL+"/v1/traces", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST after close: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after close: status %d, want 503", resp.StatusCode)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: status %d, want 503", code)
	}
}
