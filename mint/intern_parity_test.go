package mint_test

// Intern-dictionary parity: the backend keys its pattern stores by interned
// uint32 handles, and handle assignment order differs between a serial
// cluster (patterns interned in capture order), a sharded cluster fed from
// many goroutines (racing intern order), and a cluster reopened from disk
// (patterns interned in snapshot/WAL replay order, under a different shard
// count). None of that may leak into answers: Query, BatchAnalyze and
// FindTraces must be byte-identical across all three. Run with -race.

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func internParityFilters(ids []string) []mint.Filter {
	return []mint.Filter{
		{Service: "checkout", Candidates: ids},
		{ErrorsOnly: true, Candidates: ids},
		{Operation: "GET /product", Candidates: ids, Limit: 40},
		{MinDurationUS: 20_000, MaxDurationUS: 10_000_000, Candidates: ids},
		{SampledOnly: true},
	}
}

// assertClusterParity compares two clusters across the three read paths.
func assertClusterParity(t *testing.T, label string, want, got *mint.Cluster, traces []*mint.Trace) {
	t.Helper()
	wantRenders := queryRenders(want, traces)
	gotRenders := queryRenders(got, traces)
	for i := range wantRenders {
		if wantRenders[i] != gotRenders[i] {
			t.Fatalf("%s: Query diverged on %s:\n  want %s\n  got  %s",
				label, traces[i].TraceID, wantRenders[i], gotRenders[i])
		}
	}

	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	wantStats, wantMiss := want.BatchAnalyze(ids)
	gotStats, gotMiss := got.BatchAnalyze(ids)
	if wantMiss != gotMiss || !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("%s: BatchAnalyze diverged: (%+v, %d) vs (%+v, %d)",
			label, wantStats, wantMiss, gotStats, gotMiss)
	}

	for _, f := range internParityFilters(ids) {
		if w, g := want.FindTraces(f), got.FindTraces(f); !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: FindTraces(%+v) diverged:\n  want %v\n  got  %v", label, f, w, g)
		}
	}
}

// TestInternParitySerialShardedReopened drives one workload into (a) the
// serial single-shard reference, (b) a sharded cluster captured from many
// goroutines, and (c) a persistent sharded cluster reopened from disk under
// a different shard count — three different intern orders over the same
// content — and requires byte-identical answers everywhere.
func TestInternParitySerialShardedReopened(t *testing.T) {
	sys := sim.OnlineBoutique(7)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 400)

	serial, _ := serialReference(warm, traces)
	defer serial.Close()

	// (b) sharded, captured concurrently.
	sharded := mint.NewCluster(sys.Nodes, mint.Config{
		Shards:          8,
		DisableSamplers: true,
	})
	sharded.Warmup(warm)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(traces); i += 4 {
				sharded.Capture(traces[i])
			}
		}(w)
	}
	wg.Wait()
	markEveryTenth(sharded, traces)
	sharded.Flush()
	defer sharded.Close()
	assertClusterParity(t, "sharded", serial, sharded, traces)

	// (c) persistent: write with 8 shards, reopen with 3 — replay re-interns
	// every pattern in snapshot order into a fresh dictionary.
	dir := t.TempDir()
	persisted, err := mint.Open(sys.Nodes, mint.Config{
		Shards:          8,
		IngestWorkers:   4,
		DisableSamplers: true,
		DataDir:         dir,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	persisted.Warmup(warm)
	for _, tr := range traces {
		persisted.CaptureAsync(tr)
	}
	persisted.Flush()
	markEveryTenth(persisted, traces)
	if err := persisted.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened, err := mint.Open(sys.Nodes, mint.Config{
		Shards:          3,
		DisableSamplers: true,
		DataDir:         dir,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	assertClusterParity(t, "reopened", serial, reopened, traces)
}
