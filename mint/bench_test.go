package mint_test

// Micro-benchmarks for the per-request hot path: span parsing, sub-trace
// ingestion and trace queries. These quantify the "lightweight enough for
// production" claim (§5.4) independently of the figure-level harness.

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func benchCluster(b *testing.B) (*sim.System, *mint.Cluster) {
	b.Helper()
	sys := sim.OnlineBoutique(1)
	cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 300))
	return sys, cluster
}

// BenchmarkCaptureTrace measures end-to-end agent-side processing of one
// trace: parsing every span, buffering params, topology encoding, Bloom
// mounting and sampling.
func BenchmarkCaptureTrace(b *testing.B) {
	sys, cluster := benchCluster(b)
	traces := sim.GenTraces(sys, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Capture(traces[i%len(traces)])
	}
}

// BenchmarkCaptureSpan normalizes capture cost per span.
func BenchmarkCaptureSpan(b *testing.B) {
	sys, cluster := benchCluster(b)
	traces := sim.GenTraces(sys, 2048)
	spans := 0
	for _, t := range traces {
		spans += len(t.Spans)
	}
	b.ResetTimer()
	n := 0
	for i := 0; n < b.N; i++ {
		t := traces[i%len(traces)]
		cluster.Capture(t)
		n += len(t.Spans)
	}
}

// BenchmarkQueryApproximate measures the Bloom-scan plus approximate
// reconstruction path for unsampled traces.
func BenchmarkQueryApproximate(b *testing.B) {
	sys, cluster := benchCluster(b)
	traces := sim.GenTraces(sys, 1000)
	for _, t := range traces {
		cluster.Capture(t)
	}
	cluster.Flush()
	var ids []string
	for _, t := range traces {
		if cluster.Query(t.TraceID).Kind == mint.PartialHit {
			ids = append(ids, t.TraceID)
		}
		if len(ids) == 64 {
			break
		}
	}
	if len(ids) == 0 {
		b.Fatal("no partial hits to query")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Query(ids[i%len(ids)])
	}
}

// BenchmarkQueryExact measures exact reconstruction of sampled traces.
func BenchmarkQueryExact(b *testing.B) {
	sys, cluster := benchCluster(b)
	services := sys.TrafficServices()
	var ids []string
	for i := 0; i < 600; i++ {
		opt := sim.GenOptions{}
		if i%10 == 9 {
			opt.Fault = &sim.Fault{Type: sim.FaultException, Service: services[i%len(services)], Magnitude: 50}
		}
		t := sys.GenTrace(sys.PickAPI(), opt)
		cluster.Capture(t)
		if opt.Fault != nil {
			ids = append(ids, t.TraceID)
		}
	}
	cluster.Flush()
	var exact []string
	for _, id := range ids {
		if cluster.Query(id).Kind == mint.ExactHit {
			exact = append(exact, id)
		}
	}
	if len(exact) == 0 {
		b.Fatal("no exact hits to query")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Query(exact[i%len(exact)])
	}
}

// BenchmarkFlush measures the periodic pattern/Bloom upload.
func BenchmarkFlush(b *testing.B) {
	sys, cluster := benchCluster(b)
	traces := sim.GenTraces(sys, 512)
	i := 0
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cluster.Capture(traces[i%len(traces)])
		i++
		cluster.Flush()
	}
}

// BenchmarkWarmup measures offline parser construction over the default
// 5000-span sample size at several corpus sizes.
func BenchmarkWarmup(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("traces=%d", n), func(b *testing.B) {
			sys := sim.OnlineBoutique(1)
			warm := sim.GenTraces(sys, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
				cluster.Warmup(warm)
			}
		})
	}
}
