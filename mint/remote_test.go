package mint_test

// Loopback parity: the acceptance bar for the networked deployment. The
// same workload driven through (a) an in-process cluster and (b) a
// mintd-shaped loopback server plus remote agents dialed over TCP must
// answer Query, BatchAnalyze and FindTraces byte-identically — including
// after the server restarts from its DataDir, proving durability is
// preserved over the wire. Run with -race: the transport multiplexes
// collectors, reporters and query goroutines onto one connection.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/mint"
)

// mintdShaped is what cmd/mintd assembles: a durable backend hosted behind
// the RPC server, with no local agents (they live on the client side of the
// wire).
type mintdShaped struct {
	cluster *mint.Cluster
	srv     *rpc.Server
	addr    string
}

func startMintd(t *testing.T, dir string, shards int) *mintdShaped {
	t.Helper()
	cluster, err := mint.Open(nil, mint.Config{Shards: shards, DataDir: dir})
	if err != nil {
		t.Fatalf("open server backend: %v", err)
	}
	srv := rpc.NewServer(cluster.Backend())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return &mintdShaped{cluster: cluster, srv: srv, addr: addr.String()}
}

// stop shuts the server down mintd-style: stop the listener, then close the
// cluster (flushing the WAL durable).
func (m *mintdShaped) stop(t *testing.T) {
	t.Helper()
	m.srv.Close()
	if err := m.cluster.Close(); err != nil {
		t.Fatalf("close server backend: %v", err)
	}
}

// assertRemoteParity compares every read path of the two clusters
// byte-for-byte: Query renders, BatchAnalyze, FindTraces and storage
// accounting.
func assertRemoteParity(t *testing.T, label string, inproc, remote *mint.Cluster, ids []string) {
	t.Helper()
	want, got := renderQueries(inproc, ids), renderQueries(remote, ids)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: trace %s diverged:\nin-process:\n%s\nremote:\n%s", label, ids[i], want[i], got[i])
		}
	}

	wantStats, wantMiss := inproc.BatchAnalyze(ids)
	gotStats, gotMiss := remote.BatchAnalyze(ids)
	if wantMiss != gotMiss || !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("%s: BatchAnalyze diverged: in-process (%+v, %d) vs remote (%+v, %d)",
			label, wantStats, wantMiss, gotStats, gotMiss)
	}

	for _, f := range recoveryFilters(ids) {
		w, g := inproc.FindTraces(f), remote.FindTraces(f)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: FindTraces(%+v) diverged:\nin-process: %v\nremote: %v", label, f, w, g)
		}
	}

	if w, g := inproc.StorageBytes(), remote.StorageBytes(); w != g {
		t.Fatalf("%s: storage bytes diverged: in-process %d, remote %d", label, w, g)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("%s: remote transport error: %v", label, err)
	}
}

func TestLoopbackParityWithRestart(t *testing.T) {
	dir := t.TempDir()
	sys := sim.OnlineBoutique(33)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 500)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}

	// The in-process reference: agents + sharded backend in one process.
	inproc := mint.NewCluster(sys.Nodes, mint.Config{Shards: 4})
	defer inproc.Close()

	// The networked deployment: the same agents, but dialed into a
	// mintd-shaped loopback server holding the (durable) backend.
	server := startMintd(t, dir, 4)
	remote, err := mint.Dial(server.addr, sys.Nodes, mint.Defaults())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}

	// Identical serial workload through both. The full samplers are on:
	// serial capture order makes their streaming decisions deterministic,
	// so they must agree across deployments.
	inproc.Warmup(warm)
	remote.Warmup(warm)
	for _, tr := range traces {
		if err := inproc.Capture(tr); err != nil {
			t.Fatalf("in-process Capture: %v", err)
		}
		if err := remote.Capture(tr); err != nil {
			t.Fatalf("remote Capture: %v", err)
		}
	}
	if err := inproc.Flush(); err != nil {
		t.Fatalf("in-process Flush: %v", err)
	}
	if err := remote.Flush(); err != nil {
		t.Fatalf("remote Flush: %v", err)
	}

	// The byte meters must agree exactly: the remote transport carries the
	// same reports the in-process meter accounts.
	if w, g := inproc.NetworkBytes(), remote.NetworkBytes(); w != g {
		t.Fatalf("metered network bytes diverged: in-process %d, remote %d", w, g)
	}

	assertRemoteParity(t, "live", inproc, remote, ids)

	// Concurrent remote reads (for -race): many goroutines share the one
	// connection while stats round-trips interleave.
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				remote.Query(ids[(i*13+r)%len(ids)])
			}
			remote.QueryMany(ids[:40])
			remote.FindTraces(mint.Filter{ErrorsOnly: true, Candidates: ids[:100]})
			remote.StorageBytes()
		}(r)
	}
	wg.Wait()
	if err := remote.Err(); err != nil {
		t.Fatalf("concurrent remote reads: %v", err)
	}

	// Restart: close the remote handle (flushes the server's WAL over the
	// wire), stop the server, bring a fresh one up from the same DataDir,
	// dial again — durability must be preserved over the wire.
	if err := remote.Close(); err != nil {
		t.Fatalf("remote Close: %v", err)
	}
	server.stop(t)

	server2 := startMintd(t, dir, 2) // different shard count: layout-independent
	defer server2.stop(t)
	remote2, err := mint.Dial(server2.addr, sys.Nodes, mint.Defaults())
	if err != nil {
		t.Fatalf("re-Dial: %v", err)
	}
	defer remote2.Close()
	assertRemoteParity(t, "after restart", inproc, remote2, ids)
}

// TestLoopbackParityConcurrentIngest drives the full concurrent pipeline —
// ingest worker pool, async batched reporters — through the network
// transport under -race. Samplers are replaced by deterministic hash-based
// head sampling so decisions are interleaving-independent, and a fixed
// subset is marked sampled explicitly (the concurrent-parity discipline the
// in-process tests use).
func TestLoopbackParityConcurrentIngest(t *testing.T) {
	sys := sim.OnlineBoutique(77)
	warm := sim.GenTraces(sys, 150)
	traces := sim.GenTraces(sys, 400)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	cfg := mint.Config{DisableSamplers: true, HeadSampleRate: 0.1, IngestWorkers: 4}

	inprocCfg := cfg
	inprocCfg.Shards = 4
	inproc := mint.NewCluster(sys.Nodes, inprocCfg)
	defer inproc.Close()

	server := startMintd(t, t.TempDir(), 4)
	defer server.stop(t)
	remote, err := mint.Dial(server.addr, sys.Nodes, cfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	for _, cl := range []*mint.Cluster{inproc, remote} {
		cl.Warmup(warm)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(traces); i += 4 {
					if err := cl.CaptureAsync(traces[i]); err != nil {
						t.Errorf("CaptureAsync: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := cl.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		markEveryTenth(cl, traces)
		if err := cl.Flush(); err != nil {
			t.Fatalf("second Flush: %v", err)
		}
	}

	assertRemoteParity(t, "concurrent ingest", inproc, remote, ids)
}

// TestSharedRemoteClusterConcurrentMixed shares one dialed Cluster between
// many goroutines that interleave captures, sampling marks and every kind
// of query — the workload shape the multiplexed transport exists for: all
// of it pipelines over a small connection pool concurrently. Run with
// -race. Sampling is hash-based head sampling plus explicit marks so
// decisions are interleaving-independent, and the final state must be
// byte-identical to a serial in-process run of the same workload.
func TestSharedRemoteClusterConcurrentMixed(t *testing.T) {
	sys := sim.OnlineBoutique(55)
	warm := sim.GenTraces(sys, 150)
	traces := sim.GenTraces(sys, 400)
	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	cfg := mint.Config{DisableSamplers: true, HeadSampleRate: 0.15}

	// Serial in-process reference: capture each trace, marking every tenth
	// right after its capture.
	inprocCfg := cfg
	inprocCfg.Shards = 4
	inproc := mint.NewCluster(sys.Nodes, inprocCfg)
	defer inproc.Close()
	inproc.Warmup(warm)
	for i, tr := range traces {
		if err := inproc.Capture(tr); err != nil {
			t.Fatalf("in-process Capture: %v", err)
		}
		if i%10 == 0 {
			inproc.MarkSampled(tr.TraceID, "parity-test")
		}
	}
	if err := inproc.Flush(); err != nil {
		t.Fatalf("in-process Flush: %v", err)
	}

	server := startMintd(t, t.TempDir(), 4)
	defer server.stop(t)
	remoteCfg := cfg
	remoteCfg.RemoteConns = 3
	remote, err := mint.Dial(server.addr, sys.Nodes, remoteCfg)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()
	remote.Warmup(warm)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(traces); i += workers {
				if err := remote.Capture(traces[i]); err != nil {
					t.Errorf("remote Capture: %v", err)
					return
				}
				if i%10 == 0 {
					remote.MarkSampled(traces[i].TraceID, "parity-test")
				}
				// Interleave reads with the writes: queries pipeline on the
				// same pooled connections the marks and reports ride.
				switch {
				case i%31 == 0:
					remote.QueryMany(ids[:20])
				case i%13 == 0:
					remote.BatchAnalyze(ids[:64])
				case i%7 == 0:
					remote.Query(ids[(i*3+w)%len(ids)])
				}
			}
		}(w)
	}
	wg.Wait()
	if err := remote.Flush(); err != nil {
		t.Fatalf("remote Flush: %v", err)
	}

	assertRemoteParity(t, "shared remote cluster", inproc, remote, ids)
}

// TestDialRejectsServerSideConfig pins the config ownership rule: backend
// deployment knobs belong to mintd, not to the dialing client.
func TestDialRejectsServerSideConfig(t *testing.T) {
	for _, cfg := range []mint.Config{
		{Shards: 4},
		{DataDir: "/tmp/x"},
		{QueryCacheSize: 10},
	} {
		if _, err := mint.Dial("127.0.0.1:1", []string{"n1"}, cfg); err == nil {
			t.Fatalf("Dial with server-side config %+v succeeded", cfg)
		}
	}
}

// TestRemoteClosedAndTransportErrors: the closed-cluster contract holds for
// remote clusters, and a dead server surfaces through Err instead of
// panicking or hanging.
func TestRemoteClosedAndTransportErrors(t *testing.T) {
	sys := sim.OnlineBoutique(3)
	server := startMintd(t, t.TempDir(), 1)
	remote, err := mint.Dial(server.addr, sys.Nodes, mint.Defaults())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	traces := sim.GenTraces(sys, 20)
	for _, tr := range traces {
		if err := remote.Capture(tr); err != nil {
			t.Fatalf("Capture: %v", err)
		}
	}
	if err := remote.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if res := remote.Query(traces[0].TraceID); res.Kind == mint.Miss {
		t.Fatal("remote query missed a captured trace")
	}

	// Kill the server out from under the client: reads go empty, Err
	// reports the transport failure, nothing panics.
	server.srv.Close()
	server.cluster.Close()
	fmt.Println() // keep the test output tidy under -v
	remote.Query(traces[0].TraceID)
	if err := remote.Err(); err == nil {
		t.Fatal("transport failure did not surface through Err")
	}
	if err := remote.Capture(traces[0]); err != nil {
		// Capture itself stays error-free (the report sink swallows sends
		// on a dead transport); only Close/Flush/Err report it.
		t.Fatalf("Capture after server death: %v", err)
	}
	remote.Close()
	if err := remote.Capture(traces[0]); err == nil {
		t.Fatal("Capture after Close did not fail")
	}
}
