package mint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collector"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// selfTracer renders the deployment's own pipeline stages as spans and
// feeds them back through a hidden collector on the reserved "mint-self"
// node — mint traces mint. Each observed operation becomes one tiny trace:
// an OTLP ingest request is a root "ingest-request" span with "decode" and
// "shard-apply" children, a served RPC frame is an "rpc-request" root with
// "queue-wait" and "serve" children, and a WAL flush is a single
// "wal-flush" span. The traces ride the ordinary capture path (agent parse,
// pattern extraction, Bloom membership, params buffering), so the engine's
// internals answer to the same Query/FindTraces surface it serves.
//
// Isolation is what makes the knob safe to leave on: trace IDs carry the
// telemetry.SelfTracePrefix, the backend skips self segments when probing
// ordinary IDs, and predicate searches only surface self spans for filters
// naming Service "mint-self" — query answers for real traces are identical
// with self-tracing on or off (pinned by TestSelfTraceParity).
//
// Pending traces batch under a mutex and flush to the collector every
// selfFlushBatch traces and on drain (Flush/Close), keeping observer
// callbacks — which run on ingest and RPC hot paths — cheap. The self
// collector ingests synchronously on the caller's goroutine; it never
// observes itself, so there is no recursion.
type selfTracer struct {
	col *collector.Collector

	mu      sync.Mutex
	pending []*Trace
	seq     uint64

	spansFed atomic.Int64
}

// selfFlushBatch is how many pending self traces accumulate before the
// observer that tips the batch ingests them.
const selfFlushBatch = 16

func newSelfTracer(col *collector.Collector) *selfTracer {
	return &selfTracer{col: col}
}

// span builds one self span. Self spans live entirely on the reserved node
// and service, which is what the backend's isolation checks key on.
func selfSpan(traceID, spanID, parentID, op string, kind Kind, start time.Time, d time.Duration, attrs map[string]AttrValue) *Span {
	return &Span{
		TraceID:    traceID,
		SpanID:     spanID,
		ParentID:   parentID,
		Service:    telemetry.SelfNode,
		Node:       telemetry.SelfNode,
		Operation:  op,
		Kind:       kind,
		StartUnix:  start.UnixMicro(),
		Duration:   d.Microseconds(),
		Status:     trace.StatusOK,
		Attributes: attrs,
	}
}

// observeIngest records one OTLP ingest request as a three-span pipeline
// trace: ingest-request → decode, shard-apply.
func (st *selfTracer) observeIngest(encoding string, reqStart, decodeDone, capDone time.Time, spans int) {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("%s%08x", telemetry.SelfTracePrefix, st.seq)
	t := &Trace{TraceID: id, Spans: []*Span{
		selfSpan(id, "s1", "", "ingest-request", KindServer, reqStart, capDone.Sub(reqStart),
			map[string]AttrValue{"encoding": Str(encoding)}),
		selfSpan(id, "s2", "s1", "decode", KindInternal, reqStart, decodeDone.Sub(reqStart),
			map[string]AttrValue{"encoding": Str(encoding)}),
		selfSpan(id, "s3", "s2", "shard-apply", KindInternal, decodeDone, capDone.Sub(decodeDone),
			map[string]AttrValue{"spans": Num(float64(spans))}),
	}}
	st.addLocked(t)
}

// observeRPC records one served RPC frame as a queue-wait + serve pipeline
// trace. It is the rpc.Server op-observer callback (mintd -self-trace).
func (st *selfTracer) observeRPC(o rpc.OpObservation) {
	end := time.Now()
	served := end.Add(-o.Service)
	start := served.Add(-o.QueueWait)
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("%s%08x", telemetry.SelfTracePrefix, st.seq)
	t := &Trace{TraceID: id, Spans: []*Span{
		selfSpan(id, "s1", "", "rpc-request", KindServer, start, end.Sub(start),
			map[string]AttrValue{"op": Str(o.Op), "bytes": Num(float64(o.Bytes))}),
		selfSpan(id, "s2", "s1", "queue-wait", KindInternal, start, o.QueueWait, nil),
		selfSpan(id, "s3", "s2", "serve", KindInternal, served, o.Service,
			map[string]AttrValue{"op": Str(o.Op)}),
	}}
	st.addLocked(t)
}

// observeWALFlush records one durable flush as a single-span trace.
func (st *selfTracer) observeWALFlush(start time.Time, d time.Duration) {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("%s%08x", telemetry.SelfTracePrefix, st.seq)
	t := &Trace{TraceID: id, Spans: []*Span{
		selfSpan(id, "s1", "", "wal-flush", KindInternal, start, d, nil),
	}}
	st.addLocked(t)
}

// addLocked queues one self trace and, when the batch is full, takes it and
// ingests outside the lock (collector ingest takes shard locks and must not
// serialize observers behind it). Callers hold st.mu; it is released here.
func (st *selfTracer) addLocked(t *Trace) {
	st.pending = append(st.pending, t)
	var batch []*Trace
	if len(st.pending) >= selfFlushBatch {
		batch = st.pending
		st.pending = nil
	}
	st.mu.Unlock()
	st.feed(batch)
}

// feed ingests a batch of self traces through the hidden collector. A
// sampled self trace completes its coherence locally: only the self node
// holds its params.
func (st *selfTracer) feed(batch []*Trace) {
	for _, t := range batch {
		for _, sub := range trace.BuildSubTraces(telemetry.SelfNode, t.Spans) {
			res := st.col.Ingest(sub)
			if len(res.Samples) > 0 {
				st.col.ReportSampled(sub.TraceID)
			}
		}
		st.spansFed.Add(int64(len(t.Spans)))
	}
}

// drain ingests everything pending and flushes the self collector's pattern
// and Bloom state so the self traces are immediately queryable. Called from
// Flush and Close.
func (st *selfTracer) drain() {
	st.mu.Lock()
	batch := st.pending
	st.pending = nil
	st.mu.Unlock()
	st.feed(batch)
	st.col.FlushPatterns()
	st.col.SyncReports()
}

// SpansFed reports how many self spans have been ingested so far (the
// mint_selftrace_spans_total counter).
func (st *selfTracer) SpansFed() int64 { return st.spansFed.Load() }
