package mint_test

// Cluster.Stats is the one-call snapshot harnesses (cmd/mintexp) build their
// artifacts from. These tests pin its consistency contract: it agrees with
// the single-field accessors, it is identical between an in-process cluster
// and a loopback-remote one driven with the same workload, and the
// backend-derived fields survive a DataDir reopen.

import (
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func captureInto(t *testing.T, c *mint.Cluster, sys *sim.System, n int) {
	t.Helper()
	c.Warmup(sim.GenTraces(sys, 100))
	for _, tr := range sim.GenTraces(sys, n) {
		if err := c.Capture(tr); err != nil {
			t.Fatalf("capture: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestStatsMatchesAccessors(t *testing.T) {
	sys := sim.OnlineBoutique(71)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{Shards: 3, BloomBufferBytes: 512})
	defer cluster.Close()
	captureInto(t, cluster, sys, 300)

	s := cluster.Stats()
	if s.NetworkBytes != cluster.NetworkBytes() {
		t.Fatalf("NetworkBytes %d != %d", s.NetworkBytes, cluster.NetworkBytes())
	}
	if s.StorageBytes != cluster.StorageBytes() {
		t.Fatalf("StorageBytes %d != %d", s.StorageBytes, cluster.StorageBytes())
	}
	p, b, pa := cluster.StorageBreakdown()
	if s.PatternBytes != p || s.BloomBytes != b || s.ParamBytes != pa {
		t.Fatalf("breakdown (%d,%d,%d) != (%d,%d,%d)", s.PatternBytes, s.BloomBytes, s.ParamBytes, p, b, pa)
	}
	if s.StorageBytes != s.PatternBytes+s.BloomBytes+s.ParamBytes {
		t.Fatalf("breakdown does not sum: %d != %d+%d+%d", s.StorageBytes, s.PatternBytes, s.BloomBytes, s.ParamBytes)
	}
	if s.SpanPatterns != cluster.SpanPatternCount() || s.TopoPatterns != cluster.TopoPatternCount() {
		t.Fatal("pattern counts disagree")
	}
	if s.Shards != 3 || s.Nodes != len(sys.Nodes) {
		t.Fatalf("shape: shards=%d nodes=%d", s.Shards, s.Nodes)
	}
	var evict uint64
	for _, node := range cluster.Nodes() {
		evict += cluster.AgentEvictions(node)
	}
	if s.Evictions != evict {
		t.Fatalf("evictions %d != %d", s.Evictions, evict)
	}
}

func TestStatsRemoteParity(t *testing.T) {
	sys := sim.OnlineBoutique(72)
	inproc := mint.NewCluster(sys.Nodes, mint.Config{Shards: 4, BloomBufferBytes: 512})
	defer inproc.Close()

	md := startMintd(t, t.TempDir(), 4)
	defer md.stop(t)
	remote, err := mint.Dial(md.addr, sys.Nodes, mint.Config{BloomBufferBytes: 512})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer remote.Close()

	captureInto(t, inproc, sys, 300)
	sys2 := sim.OnlineBoutique(72) // same seed: identical traffic
	captureInto(t, remote, sys2, 300)

	a, b := inproc.Stats(), remote.Stats()
	// The byte-accounting and pattern fields must be deployment-independent.
	if a.NetworkBytes != b.NetworkBytes || a.StorageBytes != b.StorageBytes ||
		a.PatternBytes != b.PatternBytes || a.BloomBytes != b.BloomBytes ||
		a.ParamBytes != b.ParamBytes ||
		a.SpanPatterns != b.SpanPatterns || a.TopoPatterns != b.TopoPatterns ||
		a.Evictions != b.Evictions {
		t.Fatalf("stats diverge across the wire:\ninproc %+v\nremote %+v", a, b)
	}
}

func TestStatsSurviveReopen(t *testing.T) {
	sys := sim.OnlineBoutique(73)
	dir := t.TempDir()
	cluster, err := mint.Open(sys.Nodes, mint.Config{Shards: 2, DataDir: dir, BloomBufferBytes: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	captureInto(t, cluster, sys, 300)
	before := cluster.Stats()
	if err := cluster.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reopened, err := mint.Open(sys.Nodes, mint.Config{Shards: 3, DataDir: dir, BloomBufferBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	after := reopened.Stats()
	if after.StorageBytes != before.StorageBytes ||
		after.PatternBytes != before.PatternBytes ||
		after.BloomBytes != before.BloomBytes ||
		after.ParamBytes != before.ParamBytes ||
		after.SpanPatterns != before.SpanPatterns ||
		after.TopoPatterns != before.TopoPatterns {
		t.Fatalf("backend stats lost in replay:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.Shards != 3 {
		t.Fatalf("reopened shards = %d, want 3", after.Shards)
	}
	// The meter and agents are fresh in the reopened cluster.
	if after.NetworkBytes != 0 {
		t.Fatalf("reopened meter should start at zero, got %d", after.NetworkBytes)
	}
}

func TestStatsClosedCluster(t *testing.T) {
	sys := sim.OnlineBoutique(74)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512})
	captureInto(t, cluster, sys, 100)
	net := cluster.NetworkBytes()
	cluster.Close()
	s := cluster.Stats()
	if s.StorageBytes != 0 || s.Shards != 0 || s.SpanPatterns != 0 {
		t.Fatalf("closed cluster must zero backend fields: %+v", s)
	}
	if s.NetworkBytes != net {
		t.Fatalf("client-side meter should still answer after Close: %d != %d", s.NetworkBytes, net)
	}
}
