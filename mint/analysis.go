package mint

import (
	"repro/internal/backend"
	"repro/internal/trace"
)

// Analysis surface for the production use cases of §6.3: trace exploration
// over approximate traces (UC 1) and batch trace analysis (UC 2).

// FlameNode is one frame of a trace flame graph.
type FlameNode = backend.FlameNode

// BatchStats aggregates per-service statistics over a batch of traces.
type BatchStats = backend.BatchStats

// ServiceStats summarizes one service's spans within a batch.
type ServiceStats = backend.ServiceStats

// Filter selects traces in FindTraces: predicates over service, operation,
// errors, duration bounds and sampling reason, plus candidate IDs for
// approximate matching.
type Filter = backend.Filter

// FoundTrace is one FindTraces answer.
type FoundTrace = backend.FoundTrace

// Explore queries a trace and renders its execution flame graph — available
// for every trace, sampled or not (UC 1). It returns the query kind, the
// flame roots and a printable rendering; ok is false only on a miss, which
// Mint's no-discard design makes effectively impossible for captured
// traffic.
func (c *Cluster) Explore(traceID string) (kind HitKind, rendered string, ok bool) {
	res := c.Query(traceID)
	if res.Kind == Miss || res.Trace == nil {
		return Miss, "", false
	}
	roots := backend.FlameGraph(res.Trace)
	return res.Kind, backend.RenderFlame(roots), true
}

// FlameGraph builds the flame graph of an already-reconstructed trace.
func FlameGraph(t *Trace) []*FlameNode { return backend.FlameGraph(t) }

// BatchAnalyze aggregates many traces in one pass (UC 2): per-service span
// counts, durations for scatter plots, error counts and the aggregated
// caller→callee topology. Unsampled traces participate through their
// approximate reconstructions, so batch analyses see all requests instead
// of a few thousand sampled spans.
// On a closed cluster it answers empty stats with every trace counted
// missing, and records ErrClosed (see Err).
func (c *Cluster) BatchAnalyze(traceIDs []string) (*BatchStats, int) {
	if err := c.checkOpen(); err != nil {
		return &BatchStats{ByService: map[string]*ServiceStats{}, Edges: map[string]int{}}, len(traceIDs)
	}
	return c.store.BatchQuery(traceIDs)
}

// FindTraces searches the backend for traces matching the filter: sampled
// traces answer exactly from their stored parameters; unsampled traces are
// reachable through Filter.Candidates and answer approximately from
// patterns, pre-screened by a targeted Bloom probe of only the topo
// patterns the filter could match. Results are sorted by trace ID.
// On a closed cluster it answers nil and records ErrClosed (see Err).
func (c *Cluster) FindTraces(f Filter) []FoundTrace {
	if err := c.checkOpen(); err != nil {
		return nil
	}
	return c.store.FindTraces(f)
}

// FindAnalyze runs FindTraces and batch-analyzes the matches in one call:
// the found traces plus their aggregated BatchStats (per-service span and
// error counts, durations, caller→callee topology). Each match is
// reconstructed once, feeding both the answer list and the aggregation.
// On a closed cluster it answers empty and records ErrClosed (see Err).
func (c *Cluster) FindAnalyze(f Filter) (*BatchStats, []FoundTrace) {
	if err := c.checkOpen(); err != nil {
		return &BatchStats{ByService: map[string]*ServiceStats{}, Edges: map[string]int{}}, nil
	}
	return c.store.FindAnalyze(f)
}

// Rebuild triggers the §4.1 reconstruct interface on every agent after a
// system change: live pattern libraries, params buffers and sampler state
// restart, and the span parsers re-warm on the given recent traces.
func (c *Cluster) Rebuild(recent []*Trace) {
	byNode := map[string][]*trace.Span{}
	for _, t := range recent {
		for node, spans := range t.ByNode() {
			byNode[node] = append(byNode[node], spans...)
		}
	}
	for node, col := range c.collectors {
		col.Agent().Rebuild(byNode[node])
	}
}
