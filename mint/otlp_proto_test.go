package mint_test

// OTLP/protobuf front-door tests: the committed binary fixtures
// (testdata/otlp_*.pb, regenerate with -update-golden) are the protobuf
// twins of the recorded OTLP/JSON payloads, and every path that ingests
// them — pb.Decode, POST /v1/traces with application/x-protobuf, the
// gRPC-framed TraceService/Export, and CaptureOTLPProto against a remote
// store — must leave the cluster byte-identical to the JSON equivalent.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/otlp"
	"repro/internal/otlp/pb"
	"repro/mint"
)

// protoFixtureName maps a JSON fixture file to its protobuf twin.
func protoFixtureName(jsonName string) string {
	return strings.TrimSuffix(jsonName, ".json") + ".pb"
}

// protoPayload reads one committed .pb fixture; with -update-golden it is
// first regenerated from the JSON fixture: the recorded payload is parsed
// into the OTLP export shape (keeping the resource attributes Mint ignores,
// like telemetry.sdk.*), re-encoded as protobuf, and suffixed with an
// unknown top-level field a future OTLP revision might add — the decoder
// must skip it.
func protoPayload(t *testing.T, jsonName string) []byte {
	t.Helper()
	path := filepath.Join("testdata", protoFixtureName(jsonName))
	if *updateGolden {
		var ex otlp.Export
		if err := json.Unmarshal(readPayload(t, jsonName), &ex); err != nil {
			t.Fatalf("parse %s: %v", jsonName, err)
		}
		payload, err := pb.AppendExport(nil, &ex)
		if err != nil {
			t.Fatalf("encode %s: %v", jsonName, err)
		}
		payload = pb.AppendStringField(payload, 999, "reserved for future otlp revisions")
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatalf("update fixture: %v", err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture (run with -update-golden to create): %v", err)
	}
	return b
}

// TestOTLPProtoFixturesMatchJSON pins the committed binary fixtures: each
// must decode to exactly the spans its JSON twin decodes to.
func TestOTLPProtoFixturesMatchJSON(t *testing.T) {
	for _, p := range goldenPayloads {
		fromJSON, err := otlp.Decode(readPayload(t, p.file), p.node)
		if err != nil {
			t.Fatalf("decode %s: %v", p.file, err)
		}
		fromPB, err := pb.Decode(protoPayload(t, p.file), p.node)
		if err != nil {
			t.Fatalf("decode %s: %v", protoFixtureName(p.file), err)
		}
		if len(fromPB) != len(fromJSON) {
			t.Fatalf("%s: %d spans via protobuf, %d via JSON", p.file, len(fromPB), len(fromJSON))
		}
		for i := range fromPB {
			if got, want := fromPB[i].Serialize(), fromJSON[i].Serialize(); got != want {
				t.Fatalf("%s span %d diverged:\nprotobuf: %s\njson:     %s", p.file, i, got, want)
			}
		}
	}
}

// postPayload POSTs one ingest payload and fails the test on a non-200.
func postPayload(t *testing.T, url, contentType, node string, payload []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/traces", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("X-Mint-Node", node)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", contentType, resp.StatusCode, body)
	}
}

// assertIngestParity compares every read path of two clusters byte-for-
// byte: Query renders, BatchAnalyze, FindTraces and pattern accounting.
func assertIngestParity(t *testing.T, label string, want, got *mint.Cluster, ids []string) {
	t.Helper()
	if w, g := want.SpanPatternCount(), got.SpanPatternCount(); w != g {
		t.Fatalf("%s: span patterns %d vs %d", label, w, g)
	}
	if w, g := want.TopoPatternCount(), got.TopoPatternCount(); w != g {
		t.Fatalf("%s: topo patterns %d vs %d", label, w, g)
	}
	wq, gq := renderQueries(want, ids), renderQueries(got, ids)
	for i := range wq {
		if wq[i] != gq[i] {
			t.Fatalf("%s: trace %s diverged:\nwant:\n%s\ngot:\n%s", label, ids[i], wq[i], gq[i])
		}
	}
	wantStats, wantMiss := want.BatchAnalyze(ids)
	gotStats, gotMiss := got.BatchAnalyze(ids)
	if wantMiss != gotMiss || !reflect.DeepEqual(wantStats, gotStats) {
		t.Fatalf("%s: BatchAnalyze diverged", label)
	}
	for _, f := range recoveryFilters(ids) {
		if w, g := want.FindTraces(f), got.FindTraces(f); !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: FindTraces(%+v) diverged:\nwant: %v\ngot:  %v", label, f, w, g)
		}
	}
}

// TestOTLPProtoEndpointParity is the tentpole acceptance test: the recorded
// payloads POSTed as protobuf must leave the backend byte-identical to the
// same payloads POSTed as JSON and to direct Capture of the decoded traces
// — same patterns, same query answers, same analysis, same search results.
func TestOTLPProtoEndpointParity(t *testing.T) {
	nodes := []string{"node-1", "node-2"}

	direct := mint.NewCluster(nodes, mint.Defaults())
	defer direct.Close()
	traces := decodedTraces(t)
	for _, tr := range traces {
		if err := direct.Capture(tr); err != nil {
			t.Fatalf("Capture: %v", err)
		}
	}
	direct.Flush()

	viaJSON := mint.NewCluster(nodes, mint.Defaults())
	defer viaJSON.Close()
	jsonSrv := httptest.NewServer(mint.NewHTTPHandler(viaJSON, "node-1"))
	defer jsonSrv.Close()

	viaProto := mint.NewCluster(nodes, mint.Defaults())
	defer viaProto.Close()
	protoSrv := httptest.NewServer(mint.NewHTTPHandler(viaProto, "node-1"))
	defer protoSrv.Close()

	for _, p := range goldenPayloads {
		postPayload(t, jsonSrv.URL, "application/json", p.node, readPayload(t, p.file))
		postPayload(t, protoSrv.URL, "application/x-protobuf", p.node, protoPayload(t, p.file))
	}
	viaJSON.Flush()
	viaProto.Flush()

	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	assertIngestParity(t, "proto vs direct", direct, viaProto, ids)
	assertIngestParity(t, "proto vs json", viaJSON, viaProto, ids)
}

// TestOTLPProtoRemoteCapture wires CaptureOTLPProto through a dialed
// cluster: the same payloads ingested against a mintd-shaped loopback
// server must answer byte-identically to local ingestion.
func TestOTLPProtoRemoteCapture(t *testing.T) {
	nodes := []string{"node-1", "node-2"}

	local := mint.NewCluster(nodes, mint.Defaults())
	defer local.Close()

	server := startMintd(t, t.TempDir(), 2)
	defer server.stop(t)
	remote, err := mint.Dial(server.addr, nodes, mint.Defaults())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer remote.Close()

	for _, p := range goldenPayloads {
		payload := protoPayload(t, p.file)
		if err := local.CaptureOTLPProto(p.node, payload); err != nil {
			t.Fatalf("local CaptureOTLPProto: %v", err)
		}
		if err := remote.CaptureOTLPProto(p.node, payload); err != nil {
			t.Fatalf("remote CaptureOTLPProto: %v", err)
		}
	}
	local.Flush()
	remote.Flush()

	var ids []string
	for _, tr := range decodedTraces(t) {
		ids = append(ids, tr.TraceID)
	}
	assertIngestParity(t, "remote vs local", local, remote, ids)
	if err := remote.Err(); err != nil {
		t.Fatalf("remote transport error: %v", err)
	}
}

// gzipBytes compresses b.
func gzipBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOTLPHTTPHardening pins the front door's defenses: unsupported
// content types are 415, oversized payloads are 413 (including after gzip
// expansion), and well-formed gzip bodies ingest in both encodings.
func TestOTLPHTTPHardening(t *testing.T) {
	cluster := mint.NewCluster([]string{"node-1", "node-2"}, mint.Defaults())
	defer cluster.Close()
	handler := mint.NewHTTPHandler(cluster, "node-1")
	srv := httptest.NewServer(handler)
	defer srv.Close()

	post := func(path, contentType, encoding string, payload []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	jsonPayload := readPayload(t, "otlp_node1.json")
	protoFix := protoPayload(t, "otlp_node1.json")

	t.Run("unsupported content type is 415", func(t *testing.T) {
		for _, ct := range []string{"text/plain", "application/xml", "application/grpc"} {
			if resp := post("/v1/traces", ct, "", jsonPayload); resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
			}
		}
	})

	t.Run("content type parameters accepted", func(t *testing.T) {
		if resp := post("/v1/traces", "application/json; charset=utf-8", "", jsonPayload); resp.StatusCode != http.StatusOK {
			t.Fatalf("parameterized content type: status %d", resp.StatusCode)
		}
	})

	t.Run("gzip json body", func(t *testing.T) {
		if resp := post("/v1/traces", "application/json", "gzip", gzipBytes(t, jsonPayload)); resp.StatusCode != http.StatusOK {
			t.Fatalf("gzip json: status %d", resp.StatusCode)
		}
	})

	t.Run("gzip protobuf body", func(t *testing.T) {
		if resp := post("/v1/traces", "application/x-protobuf", "gzip", gzipBytes(t, protoFix)); resp.StatusCode != http.StatusOK {
			t.Fatalf("gzip protobuf: status %d", resp.StatusCode)
		}
	})

	t.Run("corrupt gzip is 400", func(t *testing.T) {
		if resp := post("/v1/traces", "application/json", "gzip", []byte("not gzip at all")); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("corrupt gzip: status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unsupported encoding is 415", func(t *testing.T) {
		if resp := post("/v1/traces", "application/json", "br", jsonPayload); resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("brotli: status %d, want 415", resp.StatusCode)
		}
	})

	t.Run("oversized body is 413", func(t *testing.T) {
		small := mint.NewCluster([]string{"node-1"}, mint.Defaults())
		defer small.Close()
		h := mint.NewHTTPHandler(small, "node-1")
		h.SetMaxBody(64)
		bounded := httptest.NewServer(h)
		defer bounded.Close()

		resp, err := http.Post(bounded.URL+"/v1/traces", "application/json", bytes.NewReader(jsonPayload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized: status %d, want 413", resp.StatusCode)
		}

		// A tiny compressed body that expands past the bound is still 413:
		// the decompressed size is what counts.
		bomb := gzipBytes(t, bytes.Repeat([]byte(" "), 100_000))
		if len(bomb) >= 1000 {
			t.Fatalf("bomb did not compress: %d bytes", len(bomb))
		}
		h.SetMaxBody(1000)
		req, _ := http.NewRequest(http.MethodPost, bounded.URL+"/v1/traces", bytes.NewReader(bomb))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Content-Encoding", "gzip")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("gzip expansion: status %d, want 413", resp.StatusCode)
		}
	})
}

// grpcFrame wraps a protobuf message in the gRPC wire framing (compression
// flag + big-endian length prefix).
func grpcFrame(payload []byte) []byte {
	frame := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(frame[1:], uint32(len(payload)))
	copy(frame[5:], payload)
	return frame
}

// grpcExport POSTs one gRPC-framed Export call and returns the HTTP
// response, its body, and the grpc-status trailer.
func grpcExport(t *testing.T, url, node string, frame []byte) (*http.Response, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost,
		url+"/opentelemetry.proto.collector.trace.v1.TraceService/Export", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/grpc")
	if node != "" {
		req.Header.Set("X-Mint-Node", node)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body) // trailers arrive after the body drains
	resp.Body.Close()
	return resp, body, resp.Trailer.Get("Grpc-Status")
}

// TestOTLPGRPCExport drives the gRPC-framed Export method over HTTP/1.1
// chunked trailers (the handler is transport-agnostic; mintd adds
// cleartext HTTP/2 for real gRPC clients) and pins parity with the plain
// protobuf POST path.
func TestOTLPGRPCExport(t *testing.T) {
	nodes := []string{"node-1", "node-2"}

	viaGRPC := mint.NewCluster(nodes, mint.Defaults())
	defer viaGRPC.Close()
	grpcSrv := httptest.NewServer(mint.NewHTTPHandler(viaGRPC, "node-1"))
	defer grpcSrv.Close()

	viaPost := mint.NewCluster(nodes, mint.Defaults())
	defer viaPost.Close()
	postSrv := httptest.NewServer(mint.NewHTTPHandler(viaPost, "node-1"))
	defer postSrv.Close()

	for _, p := range goldenPayloads {
		payload := protoPayload(t, p.file)
		resp, body, status := grpcExport(t, grpcSrv.URL, p.node, grpcFrame(payload))
		if resp.StatusCode != http.StatusOK || status != "0" {
			t.Fatalf("%s: http %d grpc-status %q", p.file, resp.StatusCode, status)
		}
		// The success body is one empty ExportTraceServiceResponse frame.
		if !bytes.Equal(body, []byte{0, 0, 0, 0, 0}) {
			t.Fatalf("%s: response body % x", p.file, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/grpc" {
			t.Fatalf("%s: content type %q", p.file, ct)
		}
		postPayload(t, postSrv.URL, "application/x-protobuf", p.node, payload)
	}
	viaGRPC.Flush()
	viaPost.Flush()

	var ids []string
	for _, tr := range decodedTraces(t) {
		ids = append(ids, tr.TraceID)
	}
	assertIngestParity(t, "grpc vs post", viaPost, viaGRPC, ids)

	t.Run("compressed flag is unimplemented", func(t *testing.T) {
		frame := grpcFrame([]byte{})
		frame[0] = 1
		_, _, status := grpcExport(t, grpcSrv.URL, "node-1", frame)
		if status != "12" {
			t.Fatalf("grpc-status %q, want 12 (unimplemented)", status)
		}
	})

	t.Run("truncated frame is invalid argument", func(t *testing.T) {
		frame := grpcFrame(protoPayload(t, "otlp_node1.json"))
		_, _, status := grpcExport(t, grpcSrv.URL, "node-1", frame[:len(frame)-10])
		if status != "3" {
			t.Fatalf("grpc-status %q, want 3 (invalid argument)", status)
		}
	})

	t.Run("malformed message is invalid argument", func(t *testing.T) {
		_, _, status := grpcExport(t, grpcSrv.URL, "node-1", grpcFrame([]byte{0x80}))
		if status != "3" {
			t.Fatalf("grpc-status %q, want 3 (invalid argument)", status)
		}
	})

	t.Run("oversized message is resource exhausted", func(t *testing.T) {
		small := mint.NewCluster(nodes, mint.Defaults())
		defer small.Close()
		h := mint.NewHTTPHandler(small, "node-1")
		h.SetMaxBody(16)
		bounded := httptest.NewServer(h)
		defer bounded.Close()
		_, _, status := grpcExport(t, bounded.URL, "node-1", grpcFrame(protoPayload(t, "otlp_node1.json")))
		if status != "8" {
			t.Fatalf("grpc-status %q, want 8 (resource exhausted)", status)
		}
	})

	t.Run("wrong content type is 415", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPost,
			grpcSrv.URL+"/opentelemetry.proto.collector.trace.v1.TraceService/Export",
			bytes.NewReader(grpcFrame(nil)))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("status %d, want 415", resp.StatusCode)
		}
	})
}
