package mint_test

// Tests for the indexed parallel query engine at the public-API level:
// cache-enabled clusters answer identically to uncached ones, cached
// results are invalidated by writes (epoch correctness under -race),
// QueryMany is positional, and FindTraces reaches injected faults
// end-to-end.

import (
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

// TestQueryManyMatchesQuery: QueryMany over the worker pool answers each ID
// exactly as serial Query calls do, in position.
func TestQueryManyMatchesQuery(t *testing.T) {
	sys := sim.OnlineBoutique(7)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 400)

	uncached := mint.NewCluster(sys.Nodes, mint.Config{QueryCacheSize: -1, QueryWorkers: -1})
	pooled := mint.NewCluster(sys.Nodes, mint.Config{QueryWorkers: 8, Shards: 4})
	for _, c := range []*mint.Cluster{uncached, pooled} {
		c.Warmup(warm)
		for _, tr := range traces {
			c.Capture(tr)
		}
		c.Flush()
	}

	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}
	want := queryRenders(uncached, traces)
	results := pooled.QueryMany(ids)
	if len(results) != len(ids) {
		t.Fatalf("positional results: got %d want %d", len(results), len(ids))
	}
	// Note: sampler decisions are order-independent here (identical serial
	// captures), so renders must agree except for the sampled sets, which
	// are identical too. Compare kinds and span counts per position.
	for i, res := range results {
		if res.Kind == mint.Miss {
			t.Fatalf("trace %s missed", ids[i])
		}
		serial := uncached.Query(ids[i])
		if res.Kind != serial.Kind || len(res.Trace.Spans) != len(serial.Trace.Spans) {
			t.Fatalf("QueryMany[%d] = %s/%d spans, serial = %s/%d spans (want %s)",
				i, res.Kind, len(res.Trace.Spans), serial.Kind, len(serial.Trace.Spans), want[i])
		}
	}
}

// TestCachedClusterParity: a cluster with the query cache enabled renders
// every query byte-identically to an uncached cluster fed the same captures,
// cold and warm.
func TestCachedClusterParity(t *testing.T) {
	sys := sim.OnlineBoutique(42)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 500)

	uncached := mint.NewCluster(sys.Nodes, mint.Config{DisableSamplers: true, QueryCacheSize: -1})
	cached := mint.NewCluster(sys.Nodes, mint.Config{DisableSamplers: true, Shards: 4})
	for _, c := range []*mint.Cluster{uncached, cached} {
		c.Warmup(warm)
		for _, tr := range traces {
			c.Capture(tr)
		}
		markEveryTenth(c, traces)
		c.Flush()
	}

	want := queryRenders(uncached, traces)
	for pass := 0; pass < 2; pass++ {
		got := queryRenders(cached, traces)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pass %d trace %d diverged:\ncached:   %s\nuncached: %s",
					pass, i, got[i], want[i])
			}
		}
	}
}

// TestCacheInvalidatedByLateSampling: a cached approximate answer must not
// survive the trace's own sampling mark — the exact overlay (and its
// Reason) must appear on the very next query.
func TestCacheInvalidatedByLateSampling(t *testing.T) {
	sys := sim.OnlineBoutique(11)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 100)

	cluster := mint.NewCluster(sys.Nodes, mint.Config{DisableSamplers: true})
	cluster.Warmup(warm)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()

	id := traces[17].TraceID
	first := cluster.Query(id)
	if first.Kind != mint.PartialHit || first.Reason != "" {
		t.Fatalf("pre-mark query: %s reason=%q", first.Kind, first.Reason)
	}
	_ = cluster.Query(id) // warm the cache entry

	cluster.MarkSampled(id, "late-incident")
	cluster.Flush()

	after := cluster.Query(id)
	if after.Kind != mint.ExactHit {
		t.Fatalf("post-mark query should be exact, got %s (stale cache?)", after.Kind)
	}
	if after.Reason != "late-incident" {
		t.Fatalf("QueryResult.Reason = %q, want late-incident", after.Reason)
	}
}

// TestConcurrentQueryCaptureCached races CaptureAsync ingestion against
// Query/BatchAnalyze on a cache-enabled cluster (for -race), then verifies
// post-quiesce answers against an uncached reference.
func TestConcurrentQueryCaptureCached(t *testing.T) {
	sys := sim.OnlineBoutique(5)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 600)

	cluster := mint.NewCluster(sys.Nodes, mint.Config{
		DisableSamplers: true,
		Shards:          4,
		IngestWorkers:   4,
		QueryWorkers:    4,
	})
	cluster.Warmup(warm)

	ids := make([]string, len(traces))
	for i, tr := range traces {
		ids[i] = tr.TraceID
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range traces {
			cluster.CaptureAsync(tr)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				res := cluster.Query(ids[(i*7+r)%len(ids)])
				if res.Kind == mint.ExactHit && res.Trace == nil {
					t.Error("exact hit without trace")
					return
				}
			}
			cluster.BatchAnalyze(ids[:100])
		}(r)
	}
	wg.Wait()
	// Drain the pipeline, then render before Close: a closed cluster
	// answers nothing (ErrClosed).
	cluster.Flush()
	got := queryRenders(cluster, traces)
	cluster.Close()

	ref := mint.NewCluster(sys.Nodes, mint.Config{DisableSamplers: true, QueryCacheSize: -1})
	ref.Warmup(warm)
	for _, tr := range traces {
		ref.Capture(tr)
	}
	ref.Flush()

	want := queryRenders(ref, traces)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-quiesce trace %d diverged:\nconcurrent: %s\nreference:  %s", i, got[i], want[i])
		}
	}
}

// TestFindTracesReachesInjectedFaults: end-to-end search — inject a code
// exception at one service, then FindTraces{ErrorsOnly} over the captured
// ID universe must surface every faulted trace and nothing error-free.
func TestFindTracesReachesInjectedFaults(t *testing.T) {
	sys := sim.OnlineBoutique(23)
	warm := sim.GenTraces(sys, 200)
	cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
	cluster.Warmup(warm)

	var ids, faulted []string
	for i := 0; i < 300; i++ {
		opt := sim.GenOptions{}
		if i%20 == 19 {
			opt.Fault = &sim.Fault{Type: sim.FaultException, Service: "checkout", Magnitude: 120}
		}
		tr := sys.GenTrace(sys.PickAPI(), opt)
		ids = append(ids, tr.TraceID)
		if opt.Fault != nil && hasErrorSpan(tr) {
			// The fault only lands when the picked API's call tree touches
			// the target service.
			faulted = append(faulted, tr.TraceID)
		}
		cluster.Capture(tr)
	}
	cluster.Flush()
	if len(faulted) == 0 {
		t.Fatal("workload generated no faulted traces")
	}

	found := cluster.FindTraces(mint.Filter{ErrorsOnly: true, Candidates: ids})
	byID := map[string]mint.FoundTrace{}
	for _, f := range found {
		byID[f.TraceID] = f
	}
	for _, id := range faulted {
		f, ok := byID[id]
		if !ok {
			t.Fatalf("faulted trace %s not found by ErrorsOnly search", id)
		}
		// The symptom sampler fires on error status, so faulted traces
		// should have been sampled and answer exactly, reason included.
		if f.Kind == mint.ExactHit && f.Reason == "" {
			t.Fatalf("exact match %s missing its sampling reason", id)
		}
	}
	// Every match must actually contain an error span.
	for _, f := range found {
		res := cluster.Query(f.TraceID)
		hasErr := false
		for _, s := range res.Trace.Spans {
			if s.Status >= 400 {
				hasErr = true
				break
			}
		}
		if !hasErr {
			t.Fatalf("trace %s matched ErrorsOnly without an error span", f.TraceID)
		}
	}

	// Service search + FindAnalyze: the aggregated stats cover the service.
	stats, sfound := cluster.FindAnalyze(mint.Filter{Service: "checkout", Candidates: ids})
	if len(sfound) == 0 || stats.ByService["checkout"] == nil {
		t.Fatalf("FindAnalyze(checkout): %d matches, stats %v", len(sfound), stats.ByService)
	}
}

func hasErrorSpan(tr *mint.Trace) bool {
	for _, s := range tr.Spans {
		if s.Status >= 400 {
			return true
		}
	}
	return false
}
