package mint_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/mint"
)

// runWorkload drives one deterministic mixed workload — direct captures
// plus OTLP/JSON ingests — through a cluster and returns the captured trace
// IDs. Both self-trace parity arms run exactly this.
func runWorkload(t *testing.T, cluster *mint.Cluster, sys *sim.System) []string {
	t.Helper()
	cluster.Warmup(sim.GenTraces(sys, 100))
	var ids []string
	for i := 0; i < 200; i++ {
		opt := sim.GenOptions{}
		if i%50 == 49 {
			opt.Fault = &sim.Fault{Type: sim.FaultException, Service: "payment", Magnitude: 120}
		}
		tr := sys.GenTrace(sys.PickAPI(), opt)
		ids = append(ids, tr.TraceID)
		if i%3 == 0 {
			// Route a third of the traffic through the OTLP front door so
			// the ingest observers fire.
			payload, err := mint.EncodeOTLP(tr.Spans)
			if err != nil {
				t.Fatalf("EncodeOTLP: %v", err)
			}
			if err := cluster.CaptureOTLP(tr.Spans[0].Node, payload); err != nil {
				t.Fatalf("CaptureOTLP: %v", err)
			}
			continue
		}
		if err := cluster.Capture(tr); err != nil {
			t.Fatalf("Capture: %v", err)
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return ids
}

// queryFingerprint renders one query answer as a comparable string.
func queryFingerprint(res mint.QueryResult) string {
	s := fmt.Sprintf("%v|%s|", res.Kind, res.Reason)
	if res.Trace != nil {
		s += res.Trace.Serialize()
	}
	return s
}

// TestSelfTraceParity pins the isolation invariant behind Config.SelfTrace:
// an identical workload answers every real-trace query and predicate search
// byte-identically with self-tracing on or off. Self spans live on the
// reserved mint-self node with mint-self- trace IDs; Bloom probes skip self
// segments for ordinary IDs and searches only surface self data when the
// filter names the reserved service, so parity holds by construction.
func TestSelfTraceParity(t *testing.T) {
	plain := mint.NewCluster(sim.OnlineBoutique(7).Nodes, mint.Defaults())
	defer plain.Close()
	traced := mint.NewCluster(sim.OnlineBoutique(7).Nodes, mint.Config{SelfTrace: true})
	defer traced.Close()

	ids := runWorkload(t, plain, sim.OnlineBoutique(7))
	ids2 := runWorkload(t, traced, sim.OnlineBoutique(7))
	if !reflect.DeepEqual(ids, ids2) {
		t.Fatal("workloads diverged; the parity comparison is void")
	}
	if traced.SelfTraceSpans() == 0 {
		t.Fatal("self-traced cluster fed no self spans; the parity run exercised nothing")
	}
	if plain.SelfTraceSpans() != 0 {
		t.Fatal("plain cluster fed self spans with SelfTrace off")
	}

	for _, id := range ids {
		got, want := queryFingerprint(traced.Query(id)), queryFingerprint(plain.Query(id))
		if got != want {
			t.Fatalf("Query(%s) diverges under self-tracing:\n got %s\nwant %s", id, got, want)
		}
	}
	filters := []mint.Filter{
		{Service: "payment", Candidates: ids},
		{ErrorsOnly: true, Candidates: ids},
		{Candidates: ids},
		{Reason: "symptom-sampler"},
	}
	for i, f := range filters {
		got, want := traced.FindTraces(f), plain.FindTraces(f)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FindTraces[%d] diverges under self-tracing:\n got %v\nwant %v", i, got, want)
		}
	}
}

// TestSelfTraceQueryable asserts the other half of mint-traces-mint: the
// pipeline's own stages come back out of the ordinary query surface.
func TestSelfTraceQueryable(t *testing.T) {
	sys := sim.OnlineBoutique(11)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{SelfTrace: true})
	defer cluster.Close()
	runWorkload(t, cluster, sys)

	// The first OTLP ingest observed became self trace 1: an ingest-request
	// root with decode and shard-apply children.
	res := cluster.Query("mint-self-00000001")
	if res.Kind == mint.Miss {
		t.Fatal("self trace mint-self-00000001 is a total miss")
	}
	if res.Trace == nil || len(res.Trace.Spans) != 3 {
		t.Fatalf("self trace spans = %v, want the 3-stage ingest pipeline", res.Trace)
	}
	ops := map[string]bool{}
	for _, sp := range res.Trace.Spans {
		ops[sp.Operation] = true
		if sp.Service != "mint-self" || sp.Node != "mint-self" {
			t.Fatalf("self span on %s/%s, want the reserved mint-self node", sp.Service, sp.Node)
		}
	}
	for _, want := range []string{"ingest-request", "decode", "shard-apply"} {
		if !ops[want] {
			t.Fatalf("self trace stages %v missing %q", ops, want)
		}
	}

	// Predicate search reaches self data only when asked for by service.
	found := cluster.FindTraces(mint.Filter{Service: "mint-self", Candidates: []string{"mint-self-00000001"}})
	if len(found) == 0 {
		t.Fatal("FindTraces{Service: mint-self} surfaced no self traces")
	}
	for _, ft := range found {
		if !strings.HasPrefix(ft.TraceID, "mint-self-") {
			t.Fatalf("self-service search returned foreign trace %s", ft.TraceID)
		}
	}
}

// TestDialRejectsSelfTrace: self-tracing is a backend-side concern — the
// server observes itself — so the client constructor refuses the knob.
func TestDialRejectsSelfTrace(t *testing.T) {
	_, err := mint.Dial("127.0.0.1:1", []string{"n1"}, mint.Config{SelfTrace: true})
	if err == nil || !strings.Contains(err.Error(), "SelfTrace") {
		t.Fatalf("Dial with SelfTrace: err = %v, want a config rejection naming SelfTrace", err)
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string
	value  float64
}

func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	rest := line
	name := rest
	labels := ""
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			t.Fatalf("unbalanced labels: %q", line)
		}
		labels = rest[i+1 : j]
		rest = name + rest[j+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		t.Fatalf("sample line %q: want `name value`", line)
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatalf("sample line %q: bad value: %v", line, err)
	}
	return promSample{name: fields[0], labels: labels, value: v}
}

// labelValue extracts one label's value from a parsed label string.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// stripLabel removes one label from a label string (bucket grouping).
func stripLabel(labels, key string) string {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, part := range parts {
		if k, _, ok := strings.Cut(part, "="); ok && k == key {
			continue
		}
		kept = append(kept, part)
	}
	return strings.Join(kept, ",")
}

// TestMetricsExpositionLint scrapes /metricsz after a real workload and
// strictly lints the exposition: every series sits under a # HELP / # TYPE
// preamble for its family, counters use `_total` names (and nothing else
// does), and histogram families are structurally valid — cumulative
// buckets, a +Inf bucket equal to _count, and a _sum — with at least six
// latency families present and the pipeline ones populated.
func TestMetricsExpositionLint(t *testing.T) {
	sys := sim.OnlineBoutique(5)
	// The mintd deployment shape: durable store (WAL families) plus an
	// attached RPC server (per-op and queue-wait families).
	cluster := mint.NewCluster(sys.Nodes, mint.Config{DataDir: t.TempDir()})
	defer cluster.Close()
	runWorkload(t, cluster, sys)
	for _, id := range []string{"a", "b"} { // cold-query histogram traffic
		_ = cluster.Query(id)
	}

	handler := mint.NewHTTPHandler(cluster, sys.Nodes[0])
	handler.AttachRPCServer(rpc.NewServer(cluster.Backend()))
	srv := httptest.NewServer(handler)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	helped := map[string]bool{}
	typed := map[string]string{} // family → type
	current := ""                // family of the last # TYPE line
	type key struct{ fam, labels string }
	bucketSeen := map[key][]float64{} // per labelset, bucket values in order
	infBucket := map[key]float64{}
	sumSeen := map[key]bool{}
	countSeen := map[key]float64{}

	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("HELP without text: %q", line)
			}
			helped[fields[2]] = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			fam, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("family %s has unknown type %q", fam, typ)
			}
			if !helped[fam] {
				t.Fatalf("family %s typed before helped", fam)
			}
			if _, dup := typed[fam]; dup {
				t.Fatalf("family %s declared twice", fam)
			}
			typed[fam] = typ
			current = fam
			continue
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line %q", line)
		}
		s := parsePromLine(t, line)
		fam := s.name
		if typed[current] == "histogram" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if s.name == current+suffix {
					fam = current
				}
			}
		}
		if fam != current {
			t.Fatalf("series %s outside its family block (current family %s)", s.name, current)
		}
		switch typed[fam] {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				t.Fatalf("counter %s does not end in _total", fam)
			}
			if s.value < 0 {
				t.Fatalf("counter %s is negative: %v", fam, s.value)
			}
		case "gauge":
			if strings.HasSuffix(fam, "_total") {
				t.Fatalf("gauge %s ends in _total (reserved for counters)", fam)
			}
		case "histogram":
			switch {
			case strings.HasSuffix(s.name, "_bucket"):
				le, ok := labelValue(s.labels, "le")
				if !ok {
					t.Fatalf("bucket without le: %q", line)
				}
				k := key{fam, stripLabel(s.labels, "le")}
				if le == "+Inf" {
					infBucket[k] = s.value
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("bucket bound %q unparsable: %v", le, err)
				}
				bucketSeen[k] = append(bucketSeen[k], s.value)
			case strings.HasSuffix(s.name, "_sum"):
				sumSeen[key{fam, s.labels}] = true
			case strings.HasSuffix(s.name, "_count"):
				countSeen[key{fam, s.labels}] = s.value
			default:
				t.Fatalf("histogram family %s has bare series %s", fam, s.name)
			}
		}
	}

	// Histogram structure: cumulative buckets, +Inf == _count, _sum present.
	for k, buckets := range bucketSeen {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("%s{%s}: buckets not cumulative at %d: %v", k.fam, k.labels, i, buckets)
			}
		}
		inf, ok := infBucket[k]
		if !ok {
			t.Fatalf("%s{%s}: no +Inf bucket", k.fam, k.labels)
		}
		count, ok := countSeen[k]
		if !ok {
			t.Fatalf("%s{%s}: no _count", k.fam, k.labels)
		}
		if inf != count {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", k.fam, k.labels, inf, count)
		}
		if !sumSeen[k] {
			t.Fatalf("%s{%s}: no _sum", k.fam, k.labels)
		}
	}

	// The acceptance floor: at least six latency histogram families, and
	// the stages this workload exercised are populated.
	var latencyFams []string
	for fam, typ := range typed {
		if typ == "histogram" && strings.HasSuffix(fam, "_seconds") {
			latencyFams = append(latencyFams, fam)
		}
	}
	if len(latencyFams) < 6 {
		t.Fatalf("only %d latency histogram families (%v), want >= 6", len(latencyFams), latencyFams)
	}
	for _, probe := range []key{
		{"mint_ingest_decode_seconds", `encoding="json"`},
		{"mint_capture_seconds", ""},
		{"mint_shard_apply_seconds", `op="patterns"`},
		{"mint_query_seconds", `tier="cold"`},
		{"mint_wal_flush_seconds", ""},
	} {
		if countSeen[probe] == 0 {
			t.Fatalf("%s{%s}: _count is zero after the workload", probe.fam, probe.labels)
		}
	}
}

// TestSlowOpsEndpoint drives a cluster with a 1ns threshold (everything is
// slow) and asserts /debug/slowz serves the ledger as JSON.
func TestSlowOpsEndpoint(t *testing.T) {
	sys := sim.OnlineBoutique(3)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{SlowOpThreshold: time.Nanosecond})
	defer cluster.Close()
	runWorkload(t, cluster, sys)

	srv := httptest.NewServer(mint.NewHTTPHandler(cluster, sys.Nodes[0]))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/slowz")
	if err != nil {
		t.Fatalf("GET /debug/slowz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("slowz Content-Type %q", ct)
	}
	var got struct {
		ThresholdUS int64         `json:"threshold_us"`
		Total       uint64        `json:"total"`
		Ops         []mint.SlowOp `json:"ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("slowz JSON: %v", err)
	}
	if got.Total == 0 || len(got.Ops) == 0 {
		t.Fatalf("slowz recorded nothing under a 1ns threshold: %+v", got)
	}
	seen := map[string]bool{}
	for i, op := range got.Ops {
		if op.Op == "" || op.DurationUS < 0 {
			t.Fatalf("malformed slow op %+v", op)
		}
		if i > 0 && op.Seq <= got.Ops[i-1].Seq {
			t.Fatalf("slow ops out of order: %d after %d", op.Seq, got.Ops[i-1].Seq)
		}
		seen[op.Op] = true
	}
	for _, want := range []string{"capture", "apply-patterns"} {
		if !seen[want] {
			t.Fatalf("slow ops %v missing %q", seen, want)
		}
	}
}
