package mint_test

// Parity tests for the concurrent ingestion pipeline: capturing a workload
// from many goroutines (and through the async worker pool) must yield the
// same query results and the same storage/network accounting as the serial
// run. Run with -race to exercise the locking.
//
// The parity runs disable the Symptom/Edge-Case samplers and mark a fixed
// subset of traces sampled explicitly: the samplers' streaming estimators
// (P² quantiles, rarity-at-arrival) are order-dependent by design, so their
// decisions legitimately differ under concurrent interleaving. Everything
// else — pattern stores, Bloom segments, params, byte meters — must match.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func parityConfig() mint.Config {
	return mint.Config{DisableSamplers: true}
}

// markEveryTenth marks a deterministic subset sampled, standing in for the
// samplers' decisions.
func markEveryTenth(cluster *mint.Cluster, traces []*mint.Trace) {
	for i, tr := range traces {
		if i%10 == 0 {
			cluster.MarkSampled(tr.TraceID, "parity-test")
		}
	}
}

// queryRenders runs every trace ID through the cluster and renders each
// result — kind plus the full reconstructed span list (IDs, parents,
// service/operation, status, duration) — so parity checks catch ordering or
// stitching divergence, not just hit-kind agreement.
func queryRenders(cluster *mint.Cluster, traces []*mint.Trace) []string {
	out := make([]string, len(traces))
	for i, tr := range traces {
		res := cluster.Query(tr.TraceID)
		var b strings.Builder
		b.WriteString(res.Kind.String())
		if res.Trace != nil {
			for _, s := range res.Trace.Spans {
				fmt.Fprintf(&b, "|%s<-%s %s/%s st=%d dur=%d",
					s.SpanID, s.ParentID, s.Service, s.Operation, s.Status, s.Duration)
			}
		}
		out[i] = b.String()
	}
	return out
}

// serialReference captures the workload one trace at a time on a
// single-shard synchronous cluster — the seed behavior all modes must match.
func serialReference(warm, traces []*mint.Trace) (*mint.Cluster, []string) {
	sys := sim.OnlineBoutique(42)
	cluster := mint.NewCluster(sys.Nodes, parityConfig())
	cluster.Warmup(warm)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	markEveryTenth(cluster, traces)
	cluster.Flush()
	return cluster, queryRenders(cluster, traces)
}

func TestConcurrentCaptureMatchesSerial(t *testing.T) {
	sys := sim.OnlineBoutique(42)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 800)
	serial, wantRenders := serialReference(warm, traces)
	wantStorage := serial.StorageBytes()
	wantNetwork := serial.NetworkBytes()

	// Same workload, many goroutines calling the synchronous Capture on a
	// sharded backend. The stores are content-addressed, so ingestion order
	// must not change them: results match the serial run exactly.
	cfg := parityConfig()
	cfg.Shards = 8
	shardedSys := sim.OnlineBoutique(42)
	sharded := mint.NewCluster(shardedSys.Nodes, cfg)
	sharded.Warmup(warm)
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(traces); i += goroutines {
				sharded.Capture(traces[i])
			}
		}(g)
	}
	wg.Wait()
	markEveryTenth(sharded, traces)
	sharded.Flush()

	if got := sharded.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	gotRenders := queryRenders(sharded, traces)
	for i := range wantRenders {
		if gotRenders[i] != wantRenders[i] {
			t.Fatalf("trace %d (%s): concurrent result %q, serial %q",
				i, traces[i].TraceID, gotRenders[i], wantRenders[i])
		}
	}
	if got := sharded.StorageBytes(); got != wantStorage {
		t.Errorf("concurrent storage = %d, serial = %d", got, wantStorage)
	}
	if got := sharded.NetworkBytes(); got != wantNetwork {
		t.Errorf("concurrent network = %d, serial = %d", got, wantNetwork)
	}
}

func TestCaptureAsyncMatchesSerial(t *testing.T) {
	sys := sim.OnlineBoutique(42)
	warm := sim.GenTraces(sys, 200)
	traces := sim.GenTraces(sys, 800)
	serial, wantRenders := serialReference(warm, traces)
	wantStorage := serial.StorageBytes()
	wantNetwork := serial.NetworkBytes()

	cfg := parityConfig()
	cfg.Shards = 4
	cfg.IngestWorkers = 4
	asyncSys := sim.OnlineBoutique(42)
	async := mint.NewCluster(asyncSys.Nodes, cfg)
	async.Warmup(warm)
	for _, tr := range traces {
		async.CaptureAsync(tr)
	}
	async.Flush() // drain the worker pool so every params block is buffered
	markEveryTenth(async, traces)
	async.Flush() // deliver the marks' params reports before reading back

	gotRenders := queryRenders(async, traces)
	for i := range wantRenders {
		if gotRenders[i] != wantRenders[i] {
			t.Fatalf("trace %d (%s): async result %q, serial %q",
				i, traces[i].TraceID, gotRenders[i], wantRenders[i])
		}
	}
	// Storage is payload-only and must match exactly; the network total
	// differs only by the batching envelope, which amortizes per-message
	// framing and so can only shrink it.
	if got := async.StorageBytes(); got != wantStorage {
		t.Errorf("async storage = %d, serial = %d", got, wantStorage)
	}
	gotNetwork := async.NetworkBytes()
	if err := async.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if gotNetwork > wantNetwork {
		t.Errorf("async network = %d exceeds serial %d: batching should amortize framing", gotNetwork, wantNetwork)
	}
	if gotNetwork < wantNetwork*9/10 {
		t.Errorf("async network = %d implausibly far below serial %d", gotNetwork, wantNetwork)
	}
}

// TestAsyncPipelineWithSamplers drives the full pipeline — samplers on,
// worker pool, batched reporters, mid-stream flush — and asserts the
// paradigm invariants that hold under any interleaving: no query misses, no
// deadlocks, Close idempotent and the cluster queryable afterwards.
func TestAsyncPipelineWithSamplers(t *testing.T) {
	sys := sim.OnlineBoutique(7)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{Shards: 4, IngestWorkers: 4})
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 400)
	for i, tr := range traces {
		cluster.CaptureAsync(tr)
		if i == len(traces)/2 {
			cluster.Flush() // mid-stream drain must not deadlock or drop
		}
	}
	cluster.Flush()
	for _, tr := range traces {
		if res := cluster.Query(tr.TraceID); res.Kind == mint.Miss {
			t.Fatalf("trace %s missed after mid-stream flush", tr.TraceID)
		}
	}
	if err := cluster.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent: later calls are no-ops returning the same error.
	if err := cluster.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Closed means closed: captures and flushes fail with the sticky
	// ErrClosed instead of panicking on the closed queue or silently
	// ingesting into an unpersisted store (see closed_test.go for the full
	// contract).
	extra := sim.GenTraces(sys, 2)
	if err := cluster.Capture(extra[0]); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Capture after Close: err = %v, want ErrClosed", err)
	}
	if err := cluster.CaptureAsync(extra[1]); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("CaptureAsync after Close: err = %v, want ErrClosed", err)
	}
	if err := cluster.Flush(); !errors.Is(err, mint.ErrClosed) {
		t.Fatalf("Flush after Close: err = %v, want ErrClosed", err)
	}
}
