// Package mint is the public API of the Mint reproduction: a cost-efficient
// distributed tracing framework that captures all requests by splitting
// traces into common patterns and variable parameters ("commonality +
// variability", ASPLOS'25).
//
// The central type is Cluster: a set of per-node agents plus one backend.
// Feed it traces with Capture, flush collectors with Flush, and query any
// trace ID back with Query — sampled traces return exactly, unsampled traces
// return approximately, and nothing is ever a total miss.
//
//	cluster := mint.NewCluster([]string{"node-1", "node-2"}, mint.Defaults())
//	cluster.Warmup(warmupTraces)
//	for _, t := range traces {
//		cluster.Capture(t)
//	}
//	cluster.Flush()
//	res := cluster.Query(traces[0].TraceID)
//
// # Concurrent ingestion
//
// The ingest path is a concurrent pipeline. Config.Shards partitions the
// backend store into independently locked shards (hash-routed by pattern ID
// and trace ID) and Config.IngestWorkers starts a capture worker pool plus
// per-node async reporters that coalesce pattern/Bloom/params reports into
// batched wire envelopes (bounded queues with back-pressure; nothing is
// dropped). Capture stays synchronous and goroutine-safe in every mode;
// CaptureAsync enqueues instead of waiting. Flush drains the pipeline, and
// Close drains and stops it:
//
//	cluster := mint.NewCluster(nodes, mint.Config{Shards: 8, IngestWorkers: 8})
//	cluster.Warmup(warmupTraces)
//	for _, t := range traces {
//		cluster.CaptureAsync(t)
//	}
//	cluster.Close() // drain workers and batched reporters
//	res := cluster.Query(traces[0].TraceID)
//
// For a fixed set of sampling decisions, storage contents, query results
// and byte accounting are identical to the serial configuration, up to the
// batching envelope's amortized framing (the stores are content-addressed,
// so ingestion order cannot change them). The one order-sensitive part is
// the samplers themselves: the Symptom and Edge-Case samplers use streaming
// estimators (P² quantiles, rarity at arrival), so under concurrent
// interleavings their decisions — which traces become exact hits — can
// differ slightly from a serial run.
//
// # The query engine
//
// The read path mirrors the ingest path's scalability. Bloom probing runs
// over per-shard segment indexes keyed by (node, pattern), so a lookup
// touches each live candidate once instead of scanning every historical
// segment. Reconstructed results land in an LRU cache keyed by trace ID
// and stamped with the backend's per-shard write-epoch vector: a cached
// result is served only while no shard has accepted a write since it was
// computed, so hot-trace re-queries and repeated BatchAnalyze sets skip
// reconstruction entirely without ever returning stale data
// (Config.QueryCacheSize; cached Traces are shared — treat them as
// read-only). QueryMany and BatchAnalyze fan out over a bounded worker
// pool (Config.QueryWorkers) with positional, deterministic results.
//
// Beyond lookup-by-ID, FindTraces answers predicate searches — service,
// operation, errors, duration bounds, sampling reason — from what the
// backend already stores: sampled traces exactly from their parameters,
// candidate IDs approximately from span/topo patterns after a targeted
// Bloom probe of only the patterns the filter could match:
//
//	found := cluster.FindTraces(mint.Filter{
//		Service:    "checkout",
//		ErrorsOnly: true,
//		Candidates: windowIDs, // unsampled traces are reachable via candidates
//	})
//	stats, _ := cluster.FindAnalyze(mint.Filter{Service: "payment"})
//
// # Durability
//
// Config.DataDir attaches a durable storage engine: every backend shard
// persists to a versioned binary snapshot plus an append-only write-ahead
// log, and Open replays the directory so a reopened cluster answers
// Query/BatchAnalyze/FindTraces byte-identically to the one that wrote it.
// Flush makes everything captured so far crash-durable; Close drains the
// pipeline and then flushes, so nothing enqueued before Close is lost. Torn
// WAL tails from a crash mid-append are truncated to the last intact
// record on reopen. Config.RetentionTTL ages out stored trace data and
// Config.SnapshotEveryBytes bounds WAL growth through shard-local
// compaction:
//
//	cluster, err := mint.Open(nodes, mint.Config{
//		DataDir:      "/var/lib/mint",
//		RetentionTTL: 7 * 24 * time.Hour,
//	})
//	// capture ... Flush ... crash
//	reopened, err := mint.Open(nodes, mint.Config{DataDir: "/var/lib/mint"})
//	res := reopened.Query(id) // identical to the pre-crash answer
//
// # Networked deployment
//
// Dial connects the same pipeline to a mintd backend daemon (cmd/mintd)
// instead of an in-process backend: agents and collectors run locally,
// their reports ship over a binary TCP protocol, and queries are answered
// by the server — the paper's per-host-agents / central-backend topology.
// The returned Cluster behaves identically to an in-process one (the
// loopback parity tests pin this byte-for-byte):
//
//	cluster, err := mint.Dial("backend:9911", nodes, mint.Defaults())
//	cluster.Warmup(warmupTraces)
//	for _, t := range traces {
//		cluster.Capture(t)
//	}
//	cluster.Flush()                // server WAL is durable after this
//	res := cluster.Query(traces[0].TraceID)
//	err = cluster.Close()          // flush durable, then disconnect
//
// The transport multiplexes pipelined requests over a small connection
// pool (Config.RemoteConns) and coalesces fire-and-forget report writes
// into batched frames; every synchronous call flushes and awaits those
// writes first, so remote answers stay byte-identical to in-process ones.
//
// Backend-side knobs (Shards, DataDir, retention, query cache/workers)
// are configured on mintd and rejected by Dial. Transport failures are
// sticky per connection: healthy pooled siblings keep serving, captures
// become no-ops once the pool is exhausted, queries answer zero values,
// and Err reports the first error. After Close — local or remote — every
// operation fails with ErrClosed.
package mint

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/backend"
	"repro/internal/collector"
	"repro/internal/intern"
	"repro/internal/parser"
	"repro/internal/rpc"
	"repro/internal/sampler"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrClosed reports an operation on a Cluster after Close. Captures, marks
// and flushes return it; queries record it (retrievable through Err) and
// answer with zero values — closed means closed, for local and remote
// clusters alike.
var ErrClosed = errors.New("mint: cluster is closed")

// Re-exported data model types so API users never import internal packages.
type (
	// Span is a single unit of work within a trace.
	Span = trace.Span
	// Trace is a set of spans sharing a trace ID.
	Trace = trace.Trace
	// SubTrace is a trace segment generated on one node.
	SubTrace = trace.SubTrace
	// AttrValue is a span attribute value.
	AttrValue = trace.AttrValue
	// Kind classifies a span (server/client/...).
	Kind = trace.Kind
	// Status is a span outcome code.
	Status = trace.Status
	// QueryResult is the outcome of a trace query.
	QueryResult = backend.QueryResult
	// HitKind classifies a query outcome (exact/partial/miss).
	HitKind = backend.HitKind
)

// Re-exported constants.
const (
	KindInternal = trace.KindInternal
	KindServer   = trace.KindServer
	KindClient   = trace.KindClient
	StatusOK     = trace.StatusOK
	StatusError  = trace.StatusError

	Miss       = backend.Miss
	PartialHit = backend.PartialHit
	ExactHit   = backend.ExactHit
)

// Str builds a string attribute value.
func Str(s string) AttrValue { return trace.Str(s) }

// Num builds a numeric attribute value.
func Num(f float64) AttrValue { return trace.Num(f) }

// Config bundles every tunable of a Mint deployment. The zero value uses
// the paper's defaults everywhere.
type Config struct {
	// SimilarityThreshold for string clustering (default 0.8).
	SimilarityThreshold float64
	// Alpha is the numeric bucket precision (default 0.5).
	Alpha float64
	// WarmupSpans used by the offline stage (default 5000).
	WarmupSpans int
	// ParallelHAP enables concurrent attribute parsing.
	ParallelHAP bool
	// ParamsBufferBytes is the per-agent Params Buffer size (default 4 MB).
	ParamsBufferBytes int
	// BloomBufferBytes is the per-filter buffer (default 4 KB).
	BloomBufferBytes int
	// BloomFPP is the Bloom false-positive probability (default 0.01).
	BloomFPP float64
	// HeadSampleRate optionally adds hash-based head sampling (0 disables).
	HeadSampleRate float64
	// DisableSamplers turns off the Symptom and Edge-Case samplers
	// (useful for pure-compression experiments).
	DisableSamplers bool
	// Symptom and EdgeCase tune the two paradigm-native samplers.
	Symptom  sampler.SymptomConfig
	EdgeCase sampler.EdgeCaseConfig
	// Shards partitions the backend store into independently locked shards
	// (pattern state by pattern-ID hash, trace state by trace-ID hash).
	// 0 or 1 keeps the single-shard serial-equivalent backend. Storage
	// contents and byte accounting are identical for every value.
	Shards int
	// IngestWorkers enables the concurrent ingestion pipeline: N goroutines
	// drain CaptureAsync's bounded queue, and collectors report to the
	// backend through async batched reporters. 0 keeps every path fully
	// synchronous (the seed behavior). When enabled, call Close to drain.
	IngestWorkers int
	// QueryWorkers bounds the worker pool QueryMany/BatchAnalyze fan out
	// over. 0 sizes the pool to GOMAXPROCS; -1 forces serial queries (other
	// negative values are rejected by Open).
	QueryWorkers int
	// QueryCacheSize is the capacity (entries) of the backend's query-result
	// LRU, which serves repeated lookups of unchanged traces without
	// reconstruction and is invalidated by per-shard write epochs. 0 takes
	// the default (backend.DefaultQueryCacheSize); negative disables
	// caching. With the cache enabled, returned Traces are shared — treat
	// them as read-only.
	QueryCacheSize int
	// DataDir enables the durable storage engine: each backend shard
	// snapshots to a versioned binary file under this directory and logs
	// mutations between snapshots to a per-shard write-ahead log. On Open
	// the directory is replayed — a cluster reopened from a DataDir answers
	// Query/FindTraces identically to the one that wrote it, including
	// after a crash (torn WAL tails are truncated to the last intact
	// record). Empty keeps the store memory-only.
	DataDir string
	// RetentionTTL drops stored Bloom segments, sampled marks and
	// parameters older than this age (pattern libraries are kept — they are
	// the tiny, deduplicated commonality). Applied by a background sweep
	// and at reopen. 0 keeps everything forever. Requires DataDir.
	RetentionTTL time.Duration
	// SnapshotEveryBytes rewrites a shard's snapshot and resets its WAL
	// once the WAL exceeds this size. 0 takes
	// backend.DefaultSnapshotEveryBytes. Requires DataDir.
	SnapshotEveryBytes int64
	// RemoteConns sizes the connection pool Dial opens to the backend
	// server. Queries round-robin (and large batches fan out) across the
	// pool while coalesced ingest writes ride one designated connection to
	// preserve order. 0 takes DefaultRemoteConns; negative values are
	// rejected. A client-transport knob: Open and NewCluster ignore it.
	RemoteConns int
	// SlowOpThreshold is the latency above which an operation (capture,
	// shard apply, WAL flush, query, RPC call) is recorded in the slow-op
	// ledger (SlowOps, GET /debug/slowz). 0 takes the default
	// (backend.DefaultSlowOpThreshold, 250ms); negative disables the
	// ledger. The gate is one atomic load on the hot path.
	SlowOpThreshold time.Duration
	// SelfTrace feeds the deployment's own pipeline stages (ingest-request
	// → decode → shard-apply, RPC serve, WAL flush) back into its own
	// capture path as spans under the reserved "mint-self" node, so mintd's
	// internals can be queried with the same FindTraces/Query surface it
	// serves — mint traces mint. Self data is isolated: trace IDs carry the
	// "mint-self-" prefix, Bloom probes skip self segments for ordinary
	// IDs, and predicate searches only see self spans when the filter asks
	// for Service "mint-self", so query results for real traces are
	// byte-identical with the knob on or off. Local clusters only; Dial
	// rejects it (the server owns its own self-tracing).
	SelfTrace bool
}

// DefaultRemoteConns is the connection pool size Dial uses when
// Config.RemoteConns is zero.
const DefaultRemoteConns = 2

// Defaults returns the paper's default configuration.
func Defaults() Config { return Config{} }

func (c Config) agentConfig() agent.Config {
	return agent.Config{
		Parser: parser.Config{
			SimilarityThreshold: c.SimilarityThreshold,
			Alpha:               c.Alpha,
			WarmupSpans:         c.WarmupSpans,
			Parallel:            c.ParallelHAP,
		},
		Symptom:         c.Symptom,
		EdgeCase:        c.EdgeCase,
		ParamsBufBytes:  c.ParamsBufferBytes,
		BloomBufBytes:   c.BloomBufferBytes,
		BloomFPP:        c.BloomFPP,
		HeadSampleRate:  c.HeadSampleRate,
		DisableSamplers: c.DisableSamplers,
	}
}

// Cluster is a full Mint deployment: one agent+collector per node and a
// shared (optionally sharded) backend, with network bytes metered on every
// report. Capture, CaptureAsync, MarkSampled and Query are safe for
// concurrent use; Warmup, Flush and Close are coordination points that must
// not race with captures.
type Cluster struct {
	cfg        Config
	store      store            // report/query surface: local backend or remote transport
	local      *backend.Backend // nil for a remote (Dial) cluster
	remote     *rpc.Client      // nil for a local cluster
	meter      *wire.Meter
	nodes      []string
	collectors map[string]*collector.Collector

	ingestCh  chan *Trace    // nil when IngestWorkers == 0
	ingestWG  sync.WaitGroup // worker goroutines
	pending   sync.WaitGroup // traces enqueued but not yet fully ingested
	closed    atomic.Bool    // set by Close before the queue shuts
	closeOnce sync.Once
	closeErr  error        // the durable store's close error, set once by Close
	opErr     atomic.Value // first post-Close misuse (ErrClosed), holds error

	// capScratch pools captureOne's per-trace working state (the node
	// partition map and the sub-trace header), so the synchronous capture
	// path itself allocates nothing in steady state. Pooled, not
	// per-Cluster, because captures may run on many goroutines at once.
	capScratch sync.Pool

	// otlpDict interns the strings that repeat across OTLP/protobuf
	// payloads (service names, span names, attribute keys); otlpDecoders
	// pools the wire walkers that resolve through it, so concurrent
	// CaptureOTLPProto calls reuse decode scratch instead of allocating.
	otlpDict     *intern.Dict
	otlpDecoders sync.Pool

	// Self-observability: tel is the histogram registry (the local
	// backend's own registry, or a fresh one for a remote cluster) and
	// slow the slow-op ledger behind SlowOps and /debug/slowz. selfTr is
	// non-nil only with Config.SelfTrace.
	tel             *telemetry.Registry
	slow            *telemetry.Ledger
	selfTr          *selfTracer
	histDecodeJSON  *telemetry.Histogram
	histDecodeProto *telemetry.Histogram
	histCapture     *telemetry.Histogram
}

// captureScratch is one goroutine's reusable capture state. The byNode
// slices keep their backing arrays between traces; nothing downstream
// retains them (agents copy what they keep).
type captureScratch struct {
	byNode map[string][]*Span
	st     SubTrace
}

// NewCluster creates a deployment over the given node names. It panics if
// cfg.DataDir is set and the durable store cannot be opened — use Open to
// handle that error instead.
func NewCluster(nodes []string, cfg Config) *Cluster {
	c, err := Open(nodes, cfg)
	if err != nil {
		panic("mint: " + err.Error())
	}
	return c
}

// Open creates a deployment over the given node names. When cfg.DataDir is
// set it also attaches the durable storage engine, replaying any state a
// previous cluster persisted there — the reopen-from-disk half of crash
// recovery. The error paths are configuration validation and persistence
// I/O, so Open with a valid Config and no DataDir never fails.
func Open(nodes []string, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	b := backend.NewSharded(cfg.Alpha, shards)
	if cfg.QueryCacheSize >= 0 {
		size := cfg.QueryCacheSize
		if size == 0 {
			size = backend.DefaultQueryCacheSize
		}
		b.EnableQueryCache(size)
	}
	b.SetQueryWorkers(cfg.QueryWorkers)
	if cfg.DataDir != "" {
		err := b.OpenPersistence(backend.PersistConfig{
			Dir:                cfg.DataDir,
			RetentionTTL:       cfg.RetentionTTL,
			SnapshotEveryBytes: cfg.SnapshotEveryBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	return assemble(nodes, cfg, b, nil), nil
}

// Dial connects to a mintd backend server and returns a remote Cluster:
// agents and collectors run in this process (per-host, as the paper places
// them), while every report they emit ships over the network transport to
// the server's shared backend, and every query is answered by it. The
// returned Cluster supports the full Capture/Query/BatchAnalyze/FindTraces
// surface with the same semantics as an in-process one.
//
// Backend-side fields of cfg (Shards, QueryWorkers, QueryCacheSize,
// DataDir, RetentionTTL, SnapshotEveryBytes) configure the server's
// deployment, not the client's, and must be zero here; agent-side fields
// (parser thresholds, samplers, buffers, IngestWorkers) apply normally.
// Close flushes the server's durable store and closes the connection; the
// server keeps running. Transport failures are sticky: captures become
// no-ops, queries answer zero values, and Err reports the first error.
func Dial(addr string, nodes []string, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards != 0 || cfg.QueryWorkers != 0 || cfg.QueryCacheSize != 0 ||
		cfg.DataDir != "" || cfg.RetentionTTL != 0 || cfg.SnapshotEveryBytes != 0 ||
		cfg.SelfTrace {
		return nil, fmt.Errorf("mint: invalid config: backend-side fields (Shards, QueryWorkers, QueryCacheSize, DataDir, RetentionTTL, SnapshotEveryBytes, SelfTrace) are owned by the server; configure them on mintd")
	}
	conns := cfg.RemoteConns
	if conns == 0 {
		conns = DefaultRemoteConns
	}
	cli, err := rpc.DialPool(addr, conns)
	if err != nil {
		return nil, err
	}
	return assemble(nodes, cfg, nil, cli), nil
}

// assemble builds a Cluster over either a local backend or a remote
// transport — everything above the store (agents, collectors, reporters,
// the ingest worker pool) is identical in both deployments, which is what
// keeps loopback parity byte-exact.
func assemble(nodes []string, cfg Config, b *backend.Backend, cli *rpc.Client) *Cluster {
	var st store
	if cli != nil {
		st = cli
	} else {
		st = b
	}
	m := wire.NewMeter()
	c := &Cluster{
		cfg:        cfg,
		store:      st,
		local:      b,
		remote:     cli,
		meter:      m,
		nodes:      append([]string(nil), nodes...),
		collectors: map[string]*collector.Collector{},
		otlpDict:   intern.NewDict(),
	}
	threshold := cfg.SlowOpThreshold
	if threshold == 0 {
		threshold = backend.DefaultSlowOpThreshold
	} else if threshold < 0 {
		threshold = 0 // Ledger semantics: <= 0 disables.
	}
	if b != nil {
		// A local cluster shares the backend's registry and ledger, so
		// shard-apply/WAL/query timings and the cluster-level decode/capture
		// timings land in one scrape.
		c.tel = b.Telemetry()
		c.slow = b.SlowOps()
		c.slow.SetThreshold(threshold)
	} else {
		c.tel = telemetry.NewRegistry()
		c.slow = telemetry.NewLedger(0, threshold)
		cli.Instrument(c.tel, c.slow)
	}
	c.histDecodeJSON = c.tel.Histogram("mint_ingest_decode_seconds", `encoding="json"`,
		"OTLP payload decode latency by wire encoding, before the capture path runs.")
	c.histDecodeProto = c.tel.Histogram("mint_ingest_decode_seconds", `encoding="proto"`,
		"OTLP payload decode latency by wire encoding, before the capture path runs.")
	c.histCapture = c.tel.Histogram("mint_capture_seconds", "",
		"Full trace capture latency: per-node partition, agent parse, collector report, sampling fan-out.")
	async := cfg.IngestWorkers > 0
	for _, n := range nodes {
		a := agent.New(n, cfg.agentConfig())
		if async {
			c.collectors[n] = collector.NewAsync(a, st, m, 0, 0)
		} else {
			c.collectors[n] = collector.New(a, st, m)
		}
	}
	if cfg.SelfTrace && b != nil {
		// The self node is hidden: not in c.nodes (captureOne never routes
		// user spans to it) and always synchronous (self traces must not
		// depend on the worker pool they observe).
		sa := agent.New(telemetry.SelfNode, cfg.agentConfig())
		c.selfTr = newSelfTracer(collector.New(sa, st, m))
	}
	if async {
		c.ingestCh = make(chan *Trace, 2*cfg.IngestWorkers)
		c.ingestWG.Add(cfg.IngestWorkers)
		for i := 0; i < cfg.IngestWorkers; i++ {
			go func() {
				defer c.ingestWG.Done()
				for t := range c.ingestCh {
					c.captureOne(t)
					c.pending.Done()
				}
			}()
		}
	}
	return c
}

// Warmup trains every node's span parser offline using the spans that the
// node would have produced for the given traces (§3.2.1).
func (c *Cluster) Warmup(traces []*Trace) {
	byNode := map[string][]*Span{}
	for _, t := range traces {
		for node, spans := range t.ByNode() {
			byNode[node] = append(byNode[node], spans...)
		}
	}
	for node, spans := range byNode {
		if col, ok := c.collectors[node]; ok {
			col.Agent().Warmup(spans)
		}
	}
}

// Capture ingests one complete trace: the spans are partitioned into per-node
// sub-traces, parsed by each node's agent, and any sampling decision
// triggers a cluster-wide parameter upload (trace coherence). Capture is the
// synchronous entry point — the trace is fully ingested when it returns —
// and is safe to call from many goroutines at once. On a closed cluster it
// ingests nothing and returns ErrClosed.
func (c *Cluster) Capture(t *Trace) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.captureOne(t)
	return nil
}

// CaptureAsync hands a trace to the ingest worker pool and returns once it
// is enqueued, blocking when the bounded queue is full (back-pressure, never
// dropping). Without IngestWorkers it degrades to synchronous Capture. On a
// closed cluster it ingests nothing and returns ErrClosed. Call Flush or
// Close before querying for the results.
func (c *Cluster) CaptureAsync(t *Trace) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	if c.ingestCh == nil {
		c.captureOne(t)
		return nil
	}
	c.pending.Add(1)
	c.ingestCh <- t
	return nil
}

func (c *Cluster) captureOne(t *Trace) {
	start := time.Now()
	s, _ := c.capScratch.Get().(*captureScratch)
	if s == nil {
		s = &captureScratch{byNode: map[string][]*Span{}}
	}
	for k, v := range s.byNode {
		s.byNode[k] = v[:0]
	}
	// Partition by node, noting whether every span carries the trace's own
	// ID (the overwhelmingly common case, served without re-grouping).
	uniform := true
	for _, sp := range t.Spans {
		s.byNode[sp.Node] = append(s.byNode[sp.Node], sp)
		if sp.TraceID != t.TraceID {
			uniform = false
		}
	}

	sampledReason := ""
	record := func(res agent.IngestResult) {
		if sampledReason == "" && len(res.Samples) > 0 {
			sampledReason = res.Samples[0].Reason
		}
	}
	// Walk nodes in cluster order, not map order: the first sampling node's
	// reason is recorded on the notice, and byte accounting must be
	// deterministic across runs.
	for _, node := range c.nodes {
		spans := s.byNode[node]
		if len(spans) == 0 {
			continue
		}
		col, ok := c.collectors[node]
		if !ok {
			continue
		}
		if uniform {
			s.st = SubTrace{TraceID: t.TraceID, Node: node, Spans: spans}
			record(col.Ingest(&s.st))
			continue
		}
		for _, st := range trace.BuildSubTraces(node, spans) {
			record(col.Ingest(st))
		}
	}
	c.capScratch.Put(s)
	if sampledReason != "" {
		// The sampling collector already delivered the mark to the store
		// (collector.Ingest marks through its sink — one round-trip on a
		// remote deployment); what remains is the cluster-wide coherence
		// fan-out.
		c.notifySampled(t.TraceID, sampledReason)
	}
	d := time.Since(start)
	c.histCapture.Observe(d)
	if c.slow.Exceeds(d) {
		c.slow.Record("capture", t.TraceID, d, int64(t.Size()), -1)
	}
}

// MarkSampled externally marks a trace as sampled (the head/tail adapter
// path) and collects its parameters from every node. On a closed cluster it
// records nothing and returns ErrClosed.
func (c *Cluster) MarkSampled(traceID, reason string) error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.markSampled(traceID, reason)
	return nil
}

func (c *Cluster) markSampled(traceID, reason string) {
	c.store.MarkSampled(traceID, reason)
	c.notifySampled(traceID, reason)
}

// notifySampled performs the trace-coherence fan-out for a mark the store
// already holds: the backend broadcasts one notice on the collectors'
// control channel (counted once — it is a single multicast message), and
// every host reports its buffered params for the trace.
func (c *Cluster) notifySampled(traceID, reason string) {
	notice := &wire.SampleNotice{TraceID: traceID, Reason: reason}
	c.meter.Record("backend", notice)
	for _, node := range c.nodes {
		c.collectors[node].ReportSampled(traceID)
	}
}

// Flush performs the periodic pattern/Bloom upload on every collector
// (default cadence in the paper: one minute) and, in async mode, waits for
// the in-flight ingest queue and report batches to reach the backend, so
// queries issued after Flush see every capture enqueued before it. With
// DataDir set — or against a remote durable backend — Flush then forces the
// write-ahead logs to durable storage and returns the engine's first I/O
// error: everything queryable after a nil Flush survives a crash and
// reopen. On a closed cluster Flush does nothing and returns ErrClosed.
func (c *Cluster) Flush() error {
	if err := c.checkOpen(); err != nil {
		return err
	}
	c.drainIngest()
	for _, node := range c.nodes {
		c.collectors[node].FlushPatterns()
	}
	for _, node := range c.nodes {
		c.collectors[node].SyncReports()
	}
	if c.selfTr == nil {
		return c.store.FlushPersistence()
	}
	start := time.Now()
	err := c.store.FlushPersistence()
	c.selfTr.observeWALFlush(start, time.Since(start))
	// Drain after the flush: the pending self traces (including the
	// wal-flush span just recorded) become queryable now and durable on the
	// next flush.
	c.selfTr.drain()
	return err
}

// drainIngest waits until every trace enqueued by CaptureAsync so far has
// been fully ingested by the worker pool. Per the Cluster contract, callers
// must not race CaptureAsync with Flush/Close: the WaitGroup protocol
// forbids Add calls concurrent with Wait once the counter reaches zero.
// Enqueue-then-Flush from one goroutine is always safe.
func (c *Cluster) drainIngest() {
	if c.ingestCh == nil {
		return
	}
	c.pending.Wait()
}

// Close drains the ingest pool and every async reporter, then stops them.
// With DataDir set it then flushes the write-ahead logs and detaches the
// durable store, so everything captured before Close is on disk when it
// returns — close-is-flush. A remote cluster's Close flushes the server's
// durable store and closes the connection (the server keeps running for
// other clients). Captures must not race with Close itself. Safe to call
// more than once: the second and later calls are no-ops returning the same
// error, which is the durable store's first I/O error, if any.
//
// Closed means closed: every later operation fails with ErrClosed —
// captures, marks and flushes return it, queries record it (see Err) and
// answer with zero values.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		if c.ingestCh != nil {
			close(c.ingestCh)
			c.ingestWG.Wait()
		}
		if c.selfTr != nil {
			c.selfTr.drain()
		}
		for _, node := range c.nodes {
			c.collectors[node].FlushPatterns()
		}
		for _, node := range c.nodes {
			c.collectors[node].Close()
		}
		c.closeErr = c.store.ClosePersistence()
	})
	return c.closeErr
}

// checkOpen returns nil on a live cluster and records + returns the sticky
// ErrClosed on a closed one.
func (c *Cluster) checkOpen() error {
	if !c.closed.Load() {
		return nil
	}
	c.opErr.CompareAndSwap(nil, ErrClosed)
	return ErrClosed
}

// Err reports the cluster's first operational error: ErrClosed once any
// operation was attempted after Close, or a remote cluster's first
// transport failure. Methods without an error return (Query, BatchAnalyze,
// FindTraces, ...) record here instead of panicking or answering wrong —
// check Err when answers unexpectedly go empty. A healthy cluster reports
// nil.
func (c *Cluster) Err() error {
	if v := c.opErr.Load(); v != nil {
		return v.(error)
	}
	if c.remote != nil {
		return c.remote.Err()
	}
	return nil
}

// PersistErr reports the durable storage engine's first sticky I/O error —
// the signal a health probe needs: a cluster whose WAL writes are failing
// is still answering queries, but nothing new it acknowledges is durable.
// Memory-only and remote clusters report nil (a remote server's persistence
// health belongs to its own probes).
func (c *Cluster) PersistErr() error {
	if c.local == nil {
		return nil
	}
	return c.local.PersistErr()
}

// TransportStats are a remote cluster's fault-tolerance counters: how much
// work the transport did to hide failures. All zero for a local cluster.
type TransportStats struct {
	// Redials counts background reconnects after a connection died.
	Redials int64
	// Retries counts synchronous calls that retried transparently.
	Retries int64
	// ReplayedEnvelopes counts journaled ingest envelopes retransmitted.
	ReplayedEnvelopes int64
	// DroppedEnvelopes counts envelopes dropped at the journal bound —
	// each one is ingest lost to sustained backpressure.
	DroppedEnvelopes int64
}

// TransportStats reports the remote transport's retry/redial/replay
// counters (all zero on a local cluster).
func (c *Cluster) TransportStats() TransportStats {
	if c.remote == nil {
		return TransportStats{}
	}
	return TransportStats{
		Redials:           c.remote.Redials(),
		Retries:           c.remote.Retries(),
		ReplayedEnvelopes: c.remote.ReplayedEnvelopes(),
		DroppedEnvelopes:  c.remote.DroppedEnvelopes(),
	}
}

// Query looks a trace ID up in the backend. Sampled traces answer exactly
// (QueryResult.Reason carries the sampling reason), everything else answers
// approximately. Repeated lookups of unchanged traces are served from the
// epoch-validated result cache (Config.QueryCacheSize). On a closed cluster
// Query answers Miss and records ErrClosed (see Err).
func (c *Cluster) Query(traceID string) QueryResult {
	if err := c.checkOpen(); err != nil {
		return QueryResult{}
	}
	return c.store.Query(traceID)
}

// QueryMany answers one query per trace ID, fanning the lookups out over
// the bounded query worker pool (Config.QueryWorkers) — or, on a remote
// cluster, batching them into one round-trip. Results are positional:
// out[i] answers traceIDs[i], identical to serial Query calls. On a closed
// cluster every result is a Miss and ErrClosed is recorded (see Err).
func (c *Cluster) QueryMany(traceIDs []string) []QueryResult {
	if err := c.checkOpen(); err != nil {
		return make([]QueryResult, len(traceIDs))
	}
	return c.store.QueryMany(traceIDs)
}

// NetworkBytes returns the total bytes agents and backend exchanged.
func (c *Cluster) NetworkBytes() int64 { return c.meter.Total() }

// NetworkBytesByKind returns the bytes sent for one message kind
// ("patterns", "bloom", "params", "notice").
func (c *Cluster) NetworkBytesByKind(kind string) int64 { return c.meter.ByKind(kind) }

// StorageBytes returns the backend's persisted bytes (one stats round-trip
// on a remote cluster). On a closed cluster it answers 0 and records
// ErrClosed (see Err).
func (c *Cluster) StorageBytes() int64 {
	if err := c.checkOpen(); err != nil {
		return 0
	}
	total, _, _, _ := c.store.StorageBytes()
	return total
}

// StorageBreakdown returns the backend's storage split into pattern, Bloom
// and parameter bytes. On a closed cluster it answers zeros and records
// ErrClosed (see Err).
func (c *Cluster) StorageBreakdown() (patterns, blooms, params int64) {
	if err := c.checkOpen(); err != nil {
		return 0, 0, 0
	}
	_, p, bl, pa := c.store.StorageBytes()
	return p, bl, pa
}

// Backend exposes the in-process backend for advanced queries. A remote
// (Dial) cluster has no local backend and returns nil — the backend lives
// in the mintd server.
func (c *Cluster) Backend() *backend.Backend { return c.local }

// Nodes returns the node names.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodes...) }

// Shards returns the backend shard count, 0 (recording ErrClosed) on a
// closed cluster.
func (c *Cluster) Shards() int {
	if err := c.checkOpen(); err != nil {
		return 0
	}
	return c.store.ShardCount()
}

// SpanPatternCount returns the distinct span patterns across the backend,
// 0 (recording ErrClosed) on a closed cluster.
func (c *Cluster) SpanPatternCount() int {
	if err := c.checkOpen(); err != nil {
		return 0
	}
	return c.store.SpanPatternCount()
}

// TopoPatternCount returns the distinct topo patterns across the backend,
// 0 (recording ErrClosed) on a closed cluster.
func (c *Cluster) TopoPatternCount() int {
	if err := c.checkOpen(); err != nil {
		return 0
	}
	return c.store.TopoPatternCount()
}

// ResetMeter zeroes the network meter (between experiment phases).
func (c *Cluster) ResetMeter() { c.meter.Reset() }

// AgentEvictions reports how many parameter blocks a node's Params Buffer
// has dropped under memory pressure (diagnostics for buffer sizing).
func (c *Cluster) AgentEvictions(node string) uint64 {
	col, ok := c.collectors[node]
	if !ok {
		return 0
	}
	return col.Agent().Buffer().Evicted()
}

// Stats is a point-in-time snapshot of a cluster's byte accounting and
// pattern state, taken in one pass so harnesses (cmd/mintexp, benchmarks)
// report a consistent view instead of stitching racy single-field reads.
// On a remote cluster the backend fields cost one stats round-trip.
type Stats struct {
	NetworkBytes int64 // agent↔backend bytes metered client-side
	StorageBytes int64 // backend's persisted bytes (patterns+blooms+params)
	PatternBytes int64
	BloomBytes   int64
	ParamBytes   int64
	SpanPatterns int
	TopoPatterns int
	Shards       int
	Nodes        int
	Evictions    uint64 // Params Buffer evictions summed over this cluster's agents
}

// Stats snapshots the cluster. On a closed cluster the backend-derived
// fields are zero (recording ErrClosed, see Err); the client-side meter and
// eviction counters still answer.
func (c *Cluster) Stats() Stats {
	s := Stats{
		NetworkBytes: c.meter.Total(),
		Nodes:        len(c.nodes),
	}
	for _, col := range c.collectors {
		s.Evictions += col.Agent().Buffer().Evicted()
	}
	if err := c.checkOpen(); err != nil {
		return s
	}
	total, patterns, blooms, params := c.store.StorageBytes()
	s.StorageBytes = total
	s.PatternBytes = patterns
	s.BloomBytes = blooms
	s.ParamBytes = params
	s.SpanPatterns = c.store.SpanPatternCount()
	s.TopoPatterns = c.store.TopoPatternCount()
	s.Shards = c.store.ShardCount()
	return s
}

// Telemetry returns the cluster's latency-histogram registry. A local
// cluster shares its backend's registry, so decode/capture families sit
// next to shard-apply, WAL and query timings in one scrape; a remote
// cluster's registry holds decode/capture plus the transport client's
// call-latency family. Served by /metricsz in Prometheus text format.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tel }

// SlowOp is one entry of the slow-op ledger: an operation whose latency
// exceeded the configured threshold, with what it was working on.
type SlowOp = telemetry.SlowOp

// SlowOps returns the slow-op ledger's retained entries, oldest first.
// Served as JSON by GET /debug/slowz and printed by minttrace -slow.
func (c *Cluster) SlowOps() []SlowOp { return c.slow.Snapshot() }

// SlowOpsTotal reports how many slow operations have been recorded since
// start, including entries the bounded ledger has since evicted.
func (c *Cluster) SlowOpsTotal() uint64 { return c.slow.Total() }

// SlowOpThreshold reports the resolved slow-op latency threshold; zero
// means the ledger is disabled.
func (c *Cluster) SlowOpThreshold() time.Duration { return c.slow.Threshold() }

// SelfTraceRPC returns the rpc.Server op observer that renders served RPC
// frames as self-trace spans, or nil when Config.SelfTrace is off — mintd
// wires it with Server.SetOpObserver before serving.
func (c *Cluster) SelfTraceRPC() func(rpc.OpObservation) {
	if c.selfTr == nil {
		return nil
	}
	return c.selfTr.observeRPC
}

// SelfTraceSpans reports how many of the cluster's own pipeline spans have
// been fed back through its capture path (zero with SelfTrace off) — the
// mint_selftrace_spans_total counter.
func (c *Cluster) SelfTraceSpans() int64 {
	if c.selfTr == nil {
		return 0
	}
	return c.selfTr.SpansFed()
}
