package mint

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/rpc"
)

// HTTPHandler is the HTTP surface of a Mint deployment, served by mintd
// next to the binary RPC port:
//
//	POST /v1/traces — OTLP/JSON trace ingest (the standard OTLP/HTTP path),
//	                  so unmodified OpenTelemetry SDK exporters can feed the
//	                  cluster. The originating node comes from the
//	                  X-Mint-Node header or ?node= query parameter, falling
//	                  back to the handler's default node (OTLP itself
//	                  carries no host placement).
//	GET  /healthz   — liveness: "ok" while the cluster is open, 503 after
//	                  Close.
//	GET  /metricsz  — operational counters in Prometheus text format:
//	                  storage and pattern accounting, metered network
//	                  bytes, OTLP request/span totals.
type HTTPHandler struct {
	cluster     *Cluster
	defaultNode string
	mux         *http.ServeMux
	rpcSrv      *rpc.Server // optional; wires transport counters into /metricsz

	otlpRequests atomic.Int64
	otlpSpans    atomic.Int64
	otlpErrors   atomic.Int64
}

// AttachRPCServer wires a transport server's counters into /metricsz, so a
// deployment fed over the RPC port (the mint.Dial topology) reports its
// ingest/query traffic there — the cluster's own byte meter only sees this
// process's collectors.
func (h *HTTPHandler) AttachRPCServer(s *rpc.Server) { h.rpcSrv = s }

// maxOTLPBody bounds one OTLP/JSON export payload (32 MB, far above any
// sane SDK batch).
const maxOTLPBody = 32 << 20

// NewHTTPHandler builds the HTTP surface over a cluster. defaultNode names
// the node OTLP payloads ingest as when the request does not say (it must
// be one of the cluster's nodes).
func NewHTTPHandler(c *Cluster, defaultNode string) *HTTPHandler {
	h := &HTTPHandler{cluster: c, defaultNode: defaultNode, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/traces", h.handleOTLP)
	h.mux.HandleFunc("/healthz", h.handleHealth)
	h.mux.HandleFunc("/metricsz", h.handleMetrics)
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// nodeOf resolves which node an OTLP request ingests as.
func (h *HTTPHandler) nodeOf(r *http.Request) string {
	if n := r.Header.Get("X-Mint-Node"); n != "" {
		return n
	}
	if n := r.URL.Query().Get("node"); n != "" {
		return n
	}
	return h.defaultNode
}

// handleOTLP ingests one OTLP/JSON export payload.
func (h *HTTPHandler) handleOTLP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	h.otlpRequests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxOTLPBody))
	if err != nil {
		h.otlpErrors.Add(1)
		// Only an actual size overrun is 413; a dropped or truncated client
		// body is the client's transient failure, not an oversized batch.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	n, err := h.cluster.captureOTLPCounted(h.nodeOf(r), body)
	h.otlpSpans.Add(int64(n))
	if err != nil {
		h.otlpErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The OTLP/HTTP success body: a full success is an empty partialSuccess.
	_, _ = w.Write([]byte(`{"partialSuccess":{}}`))
}

// handleHealth answers liveness probes. A probe is not misuse, so it reads
// the closed flag directly instead of recording ErrClosed through
// checkOpen.
func (h *HTTPHandler) handleHealth(w http.ResponseWriter, r *http.Request) {
	if h.cluster.closed.Load() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics renders operational counters in Prometheus text format.
// Like handleHealth, a scrape is not misuse: on a closed cluster it answers
// 503 instead of recording ErrClosed through the read paths.
func (h *HTTPHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := h.cluster
	if c.closed.Load() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	patterns, blooms, params := c.StorageBreakdown()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"patterns\"} %d\n", patterns)
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"bloom\"} %d\n", blooms)
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"params\"} %d\n", params)
	fmt.Fprintf(w, "mint_storage_bytes_total %d\n", patterns+blooms+params)
	fmt.Fprintf(w, "mint_span_patterns %d\n", c.SpanPatternCount())
	fmt.Fprintf(w, "mint_topo_patterns %d\n", c.TopoPatternCount())
	fmt.Fprintf(w, "mint_backend_shards %d\n", c.Shards())
	fmt.Fprintf(w, "mint_network_bytes_total %d\n", c.NetworkBytes())
	fmt.Fprintf(w, "mint_otlp_requests_total %d\n", h.otlpRequests.Load())
	fmt.Fprintf(w, "mint_otlp_spans_total %d\n", h.otlpSpans.Load())
	fmt.Fprintf(w, "mint_otlp_errors_total %d\n", h.otlpErrors.Load())
	if h.rpcSrv != nil {
		fmt.Fprintf(w, "mint_rpc_requests_total %d\n", h.rpcSrv.Requests())
		fmt.Fprintf(w, "mint_rpc_bytes_total{direction=\"in\"} %d\n", h.rpcSrv.BytesIn())
		fmt.Fprintf(w, "mint_rpc_bytes_total{direction=\"out\"} %d\n", h.rpcSrv.BytesOut())
	}
}
