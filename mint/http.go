package mint

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rpc"
)

// HTTPHandler is the HTTP surface of a Mint deployment, served by mintd
// next to the binary RPC port:
//
//	POST /v1/traces — OTLP trace ingest (the standard OTLP/HTTP path), so
//	                  unmodified OpenTelemetry SDK exporters can feed the
//	                  cluster. Content-Type selects the encoding:
//	                  application/json (or none) for OTLP/JSON,
//	                  application/x-protobuf for OTLP/protobuf on the
//	                  pooled zero-allocation decode path; anything else is
//	                  415. Request bodies may be gzip-compressed
//	                  (Content-Encoding: gzip), and payloads over the
//	                  configured bound (SetMaxBody) are 413. The
//	                  originating node comes from the X-Mint-Node header
//	                  or ?node= query parameter, falling back to the
//	                  handler's default node (OTLP itself carries no host
//	                  placement).
//	POST /opentelemetry.proto.collector.trace.v1.TraceService/Export
//	                — the same protobuf ingest framed as gRPC
//	                  (TraceService/Export), for exporters configured with
//	                  the OTLP/gRPC protocol. Served over cleartext HTTP/2
//	                  when the server enables it (mintd does) and over
//	                  HTTP/1.1 chunked trailers otherwise.
//	GET  /healthz   — liveness: "ok" while the cluster is open, 503 after
//	                  Close.
//	GET  /metricsz  — operational metrics in annotated Prometheus text
//	                  format: storage and pattern accounting, metered
//	                  network bytes, OTLP request/span totals, and the
//	                  per-stage latency histograms of the telemetry
//	                  registry (decode, capture, shard apply, WAL, query,
//	                  RPC per-op). Every family carries # HELP and # TYPE.
//	GET  /debug/slowz — the slow-op ledger as JSON: operations that
//	                  exceeded Config.SlowOpThreshold, with what they were
//	                  working on (see also minttrace -slow).
type HTTPHandler struct {
	cluster     *Cluster
	defaultNode string
	mux         *http.ServeMux
	rpcSrv      *rpc.Server // optional; wires transport counters into /metricsz
	maxBody     int64

	// bodyBufs pools payload read buffers and gzips pools decompressors,
	// so the request framing allocates as little as the decode path it
	// feeds.
	bodyBufs sync.Pool
	gzips    sync.Pool

	draining atomic.Bool

	otlpRequests atomic.Int64
	otlpSpans    atomic.Int64
	otlpErrors   atomic.Int64
	otlpShed     atomic.Int64
}

// AttachRPCServer wires a transport server's counters into /metricsz, so a
// deployment fed over the RPC port (the mint.Dial topology) reports its
// ingest/query traffic there — the cluster's own byte meter only sees this
// process's collectors.
func (h *HTTPHandler) AttachRPCServer(s *rpc.Server) { h.rpcSrv = s }

// SetDraining flips the handler into (or out of) drain mode: /healthz
// answers 503 so load balancers stop routing here, and ingest answers 429
// with a Retry-After so exporters back off and resend elsewhere — or to
// this process's successor. Queries keep answering; a drain is not an
// outage for reads.
func (h *HTTPHandler) SetDraining(v bool) { h.draining.Store(v) }

// shedIngest answers an OTLP ingest request during a drain: 429 plus a
// Retry-After hint, the standard signal an OTLP exporter retries on.
// Reports whether the request was shed.
func (h *HTTPHandler) shedIngest(w http.ResponseWriter) bool {
	if !h.draining.Load() {
		return false
	}
	h.otlpShed.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, "draining", http.StatusTooManyRequests)
	return true
}

// SetMaxBody bounds one ingest payload (after decompression, and per gRPC
// message) to n bytes; n <= 0 restores the default. Configure before
// serving — the bound is read without synchronization.
func (h *HTTPHandler) SetMaxBody(n int64) {
	if n <= 0 {
		n = maxOTLPBody
	}
	h.maxBody = n
}

// maxOTLPBody is the default bound on one OTLP export payload (32 MB, far
// above any sane SDK batch); mintd overrides it with -max-body.
const maxOTLPBody = 32 << 20

// grpcExportPath is the gRPC method the OTLP/gRPC exporter protocol calls.
const grpcExportPath = "/opentelemetry.proto.collector.trace.v1.TraceService/Export"

// NewHTTPHandler builds the HTTP surface over a cluster. defaultNode names
// the node OTLP payloads ingest as when the request does not say (it must
// be one of the cluster's nodes).
func NewHTTPHandler(c *Cluster, defaultNode string) *HTTPHandler {
	h := &HTTPHandler{cluster: c, defaultNode: defaultNode, mux: http.NewServeMux(), maxBody: maxOTLPBody}
	h.mux.HandleFunc("/v1/traces", h.handleOTLP)
	h.mux.HandleFunc(grpcExportPath, h.handleGRPCExport)
	h.mux.HandleFunc("/healthz", h.handleHealth)
	h.mux.HandleFunc("/metricsz", h.handleMetrics)
	h.mux.HandleFunc("/debug/slowz", h.handleSlowOps)
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// nodeOf resolves which node an OTLP request ingests as.
func (h *HTTPHandler) nodeOf(r *http.Request) string {
	if n := r.Header.Get("X-Mint-Node"); n != "" {
		return n
	}
	if n := r.URL.Query().Get("node"); n != "" {
		return n
	}
	return h.defaultNode
}

// mediaType normalizes a Content-Type header value to its bare media type.
func mediaType(v string) string {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.ToLower(strings.TrimSpace(v))
}

func (h *HTTPHandler) getBuf() *bytes.Buffer {
	if b, _ := h.bodyBufs.Get().(*bytes.Buffer); b != nil {
		b.Reset()
		return b
	}
	return &bytes.Buffer{}
}

// putBuf recycles a payload buffer, dropping outliers so one giant batch
// does not pin its backing array in the pool forever.
func (h *HTTPHandler) putBuf(b *bytes.Buffer) {
	if b.Cap() <= 4<<20 {
		h.bodyBufs.Put(b)
	}
}

// readBody reads one request payload into a pooled buffer, enforcing the
// size bound and transparently decompressing Content-Encoding: gzip (the
// decompressed size is bounded too, so a tiny bomb cannot expand past the
// limit). On error it returns the HTTP status to answer with.
func (h *HTTPHandler) readBody(w http.ResponseWriter, r *http.Request) (*bytes.Buffer, int, error) {
	var src io.Reader = http.MaxBytesReader(w, r.Body, h.maxBody)
	gzipped := false
	switch enc := r.Header.Get("Content-Encoding"); {
	case enc == "" || strings.EqualFold(enc, "identity"):
	case strings.EqualFold(enc, "gzip"):
		gz, _ := h.gzips.Get().(*gzip.Reader)
		if gz == nil {
			gz = new(gzip.Reader)
		}
		if err := gz.Reset(src); err != nil {
			h.gzips.Put(gz)
			return nil, http.StatusBadRequest, fmt.Errorf("bad gzip body: %w", err)
		}
		defer h.gzips.Put(gz)
		src = io.LimitReader(gz, h.maxBody+1)
		gzipped = true
	default:
		return nil, http.StatusUnsupportedMediaType, fmt.Errorf("unsupported Content-Encoding %q (use gzip or identity)", enc)
	}
	buf := h.getBuf()
	if _, err := buf.ReadFrom(src); err != nil {
		h.putBuf(buf)
		// Only an actual size overrun is 413; a dropped or truncated client
		// body is the client's transient failure, not an oversized batch.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge, err
		}
		return nil, http.StatusBadRequest, err
	}
	if gzipped && int64(buf.Len()) > h.maxBody {
		h.putBuf(buf)
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("gzip body decompresses past %d bytes", h.maxBody)
	}
	return buf, 0, nil
}

// handleOTLP ingests one OTLP export payload, dispatching on Content-Type
// between the JSON and protobuf decoders.
func (h *HTTPHandler) handleOTLP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if h.shedIngest(w) {
		return
	}
	h.otlpRequests.Add(1)
	proto := false
	switch ct := mediaType(r.Header.Get("Content-Type")); ct {
	case "", "application/json":
	case "application/x-protobuf", "application/protobuf":
		proto = true
	default:
		h.otlpErrors.Add(1)
		http.Error(w, fmt.Sprintf("unsupported Content-Type %q (use application/json or application/x-protobuf)", ct),
			http.StatusUnsupportedMediaType)
		return
	}
	buf, status, err := h.readBody(w, r)
	if err != nil {
		h.otlpErrors.Add(1)
		http.Error(w, err.Error(), status)
		return
	}
	var n int
	if proto {
		n, err = h.cluster.captureOTLPProtoCounted(h.nodeOf(r), buf.Bytes())
	} else {
		n, err = h.cluster.captureOTLPCounted(h.nodeOf(r), buf.Bytes())
	}
	h.putBuf(buf)
	h.otlpSpans.Add(int64(n))
	if err != nil {
		h.otlpErrors.Add(1)
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	if proto {
		// The OTLP/protobuf success body: an empty ExportTraceServiceResponse,
		// which encodes as zero bytes.
		w.Header().Set("Content-Type", "application/x-protobuf")
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The OTLP/HTTP success body: a full success is an empty partialSuccess.
	_, _ = w.Write([]byte(`{"partialSuccess":{}}`))
}

// gRPC status codes the Export handler answers with.
const (
	grpcOK                = 0
	grpcInvalidArgument   = 3
	grpcResourceExhausted = 8
	grpcUnimplemented     = 12
	grpcUnavailable       = 14
)

// handleGRPCExport serves TraceService/Export: the protobuf ingest framed
// as gRPC (5-byte message prefix, status in trailers). The handler is
// transport-agnostic — real gRPC clients need the server's cleartext
// HTTP/2; anything speaking HTTP/1.1 chunked trailers works too.
func (h *HTTPHandler) handleGRPCExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if ct := mediaType(r.Header.Get("Content-Type")); ct != "application/grpc" &&
		ct != "application/grpc+proto" {
		http.Error(w, fmt.Sprintf("unsupported Content-Type %q (use application/grpc)", ct),
			http.StatusUnsupportedMediaType)
		return
	}
	h.otlpRequests.Add(1)
	// Trailers carry the status; declare them before the response starts.
	w.Header().Set("Trailer", "Grpc-Status, Grpc-Message")
	w.Header().Set("Content-Type", "application/grpc")

	if h.draining.Load() {
		// UNAVAILABLE is the status gRPC exporters retry on.
		h.otlpShed.Add(1)
		w.WriteHeader(http.StatusOK)
		w.Header().Set("Grpc-Status", strconv.Itoa(grpcUnavailable))
		w.Header().Set("Grpc-Message", "draining")
		return
	}

	buf, status, msg := h.readGRPCMessage(r)
	var n int
	if status == grpcOK {
		var err error
		n, err = h.cluster.captureOTLPProtoCounted(h.nodeOf(r), buf.Bytes())
		switch {
		case err == nil:
		case errors.Is(err, ErrClosed):
			status, msg = grpcUnavailable, err.Error()
		default:
			status, msg = grpcInvalidArgument, err.Error()
		}
	}
	if buf != nil {
		h.putBuf(buf)
	}
	h.otlpSpans.Add(int64(n))
	if status != grpcOK {
		h.otlpErrors.Add(1)
	}
	w.WriteHeader(http.StatusOK)
	if status == grpcOK {
		// Empty ExportTraceServiceResponse: one uncompressed zero-length
		// message frame.
		_, _ = w.Write([]byte{0, 0, 0, 0, 0})
	}
	w.Header().Set("Grpc-Status", strconv.Itoa(status))
	if msg != "" {
		w.Header().Set("Grpc-Message", grpcEncodeMessage(msg))
	}
}

// readGRPCMessage reads one length-prefixed gRPC message into a pooled
// buffer. On failure it returns a nil buffer and the gRPC status code plus
// message to answer with.
func (h *HTTPHandler) readGRPCMessage(r *http.Request) (*bytes.Buffer, int, string) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.Body, hdr[:]); err != nil {
		return nil, grpcInvalidArgument, "short gRPC frame header"
	}
	if hdr[0] != 0 {
		return nil, grpcUnimplemented, "compressed gRPC messages are not supported"
	}
	size := int64(binary.BigEndian.Uint32(hdr[1:]))
	if size > h.maxBody {
		return nil, grpcResourceExhausted,
			fmt.Sprintf("message of %d bytes exceeds the %d byte limit", size, h.maxBody)
	}
	buf := h.getBuf()
	if n, err := buf.ReadFrom(io.LimitReader(r.Body, size)); err != nil || n != size {
		h.putBuf(buf)
		return nil, grpcInvalidArgument, "truncated gRPC message"
	}
	return buf, grpcOK, ""
}

// grpcEncodeMessage percent-encodes a grpc-message trailer value per the
// gRPC HTTP/2 spec (space and printable ASCII except % pass through).
func grpcEncodeMessage(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= ' ' && c <= '~' && c != '%' {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

// handleHealth answers liveness probes. A probe is not misuse, so it reads
// the closed flag directly instead of recording ErrClosed through
// checkOpen. Unhealthy states beyond closed: draining (this process is on
// its way out — stop routing new work here) and a sticky WAL I/O error
// (the cluster still answers, but its acknowledgements are no longer
// durable, which a health check must not paper over).
func (h *HTTPHandler) handleHealth(w http.ResponseWriter, r *http.Request) {
	if h.cluster.closed.Load() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	if h.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if err := h.cluster.PersistErr(); err != nil {
		http.Error(w, "persistence: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// family writes the # HELP / # TYPE preamble for one metric family. Every
// series /metricsz serves sits under exactly one such preamble — the strict
// exposition contract TestMetricsExpositionLint pins.
func family(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// handleMetrics renders operational counters and latency histograms in
// Prometheus text exposition format (0.0.4), with HELP/TYPE annotations on
// every family and counters under `_total` names. Like handleHealth, a
// scrape is not misuse: on a closed cluster it answers 503 instead of
// recording ErrClosed through the read paths.
func (h *HTTPHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := h.cluster
	if c.closed.Load() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	patterns, blooms, params := c.StorageBreakdown()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	family(w, "mint_storage_bytes", "gauge", "Stored bytes by component; kind=\"total\" is the sum of the other kinds.")
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"patterns\"} %d\n", patterns)
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"bloom\"} %d\n", blooms)
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"params\"} %d\n", params)
	fmt.Fprintf(w, "mint_storage_bytes{kind=\"total\"} %d\n", patterns+blooms+params)
	family(w, "mint_span_patterns", "gauge", "Distinct span patterns in the store.")
	fmt.Fprintf(w, "mint_span_patterns %d\n", c.SpanPatternCount())
	family(w, "mint_topo_patterns", "gauge", "Distinct topology patterns in the store.")
	fmt.Fprintf(w, "mint_topo_patterns %d\n", c.TopoPatternCount())
	family(w, "mint_backend_shards", "gauge", "Backend store shard count.")
	fmt.Fprintf(w, "mint_backend_shards %d\n", c.Shards())
	family(w, "mint_network_bytes_total", "counter", "Metered report bytes from this process's collectors to the backend.")
	fmt.Fprintf(w, "mint_network_bytes_total %d\n", c.NetworkBytes())
	family(w, "mint_otlp_requests_total", "counter", "OTLP export requests received (all encodings).")
	fmt.Fprintf(w, "mint_otlp_requests_total %d\n", h.otlpRequests.Load())
	family(w, "mint_otlp_spans_total", "counter", "Spans ingested from OTLP export requests.")
	fmt.Fprintf(w, "mint_otlp_spans_total %d\n", h.otlpSpans.Load())
	family(w, "mint_otlp_errors_total", "counter", "OTLP export requests rejected or failed.")
	fmt.Fprintf(w, "mint_otlp_errors_total %d\n", h.otlpErrors.Load())
	family(w, "mint_otlp_shed_total", "counter", "OTLP export requests shed while draining.")
	fmt.Fprintf(w, "mint_otlp_shed_total %d\n", h.otlpShed.Load())
	family(w, "mint_draining", "gauge", "1 while the handler sheds ingest for shutdown, else 0.")
	draining := 0
	if h.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "mint_draining %d\n", draining)
	family(w, "mint_selftrace_spans_total", "counter", "Pipeline self-trace spans fed back into the capture path (0 unless -self-trace).")
	fmt.Fprintf(w, "mint_selftrace_spans_total %d\n", c.SelfTraceSpans())
	family(w, "mint_slow_ops_total", "counter", "Operations recorded by the slow-op ledger since start (see /debug/slowz).")
	fmt.Fprintf(w, "mint_slow_ops_total %d\n", c.SlowOpsTotal())
	if h.rpcSrv != nil {
		family(w, "mint_rpc_requests_total", "counter", "RPC request frames served.")
		fmt.Fprintf(w, "mint_rpc_requests_total %d\n", h.rpcSrv.Requests())
		family(w, "mint_rpc_bytes_total", "counter", "RPC transport bytes by direction.")
		fmt.Fprintf(w, "mint_rpc_bytes_total{direction=\"in\"} %d\n", h.rpcSrv.BytesIn())
		fmt.Fprintf(w, "mint_rpc_bytes_total{direction=\"out\"} %d\n", h.rpcSrv.BytesOut())
		family(w, "mint_rpc_ingest_shed_total", "counter", "Ingest frames shed by overload control.")
		fmt.Fprintf(w, "mint_rpc_ingest_shed_total %d\n", h.rpcSrv.Shed())
		family(w, "mint_rpc_dedup_hits_total", "counter", "Replayed envelopes suppressed by exactly-once ingest dedup.")
		fmt.Fprintf(w, "mint_rpc_dedup_hits_total %d\n", h.rpcSrv.DedupHits())
		family(w, "mint_rpc_ingest_sessions", "gauge", "Live exactly-once ingest sessions.")
		fmt.Fprintf(w, "mint_rpc_ingest_sessions %d\n", h.rpcSrv.IngestSessions())
		family(w, "mint_rpc_panics_total", "counter", "Handler panics recovered by the RPC server.")
		fmt.Fprintf(w, "mint_rpc_panics_total %d\n", h.rpcSrv.Panics())
	}
	if c.remote != nil {
		ts := c.TransportStats()
		family(w, "mint_rpc_client_redials_total", "counter", "Transport reconnects performed by the RPC client.")
		fmt.Fprintf(w, "mint_rpc_client_redials_total %d\n", ts.Redials)
		family(w, "mint_rpc_client_retries_total", "counter", "RPC calls transparently retried after a transport failure.")
		fmt.Fprintf(w, "mint_rpc_client_retries_total %d\n", ts.Retries)
		family(w, "mint_rpc_client_replayed_envelopes_total", "counter", "Unacknowledged ingest envelopes replayed after redial.")
		fmt.Fprintf(w, "mint_rpc_client_replayed_envelopes_total %d\n", ts.ReplayedEnvelopes)
		family(w, "mint_rpc_client_dropped_envelopes_total", "counter", "Ingest envelopes dropped after exhausting replay.")
		fmt.Fprintf(w, "mint_rpc_client_dropped_envelopes_total %d\n", ts.DroppedEnvelopes)
	}
	// Latency histograms: the cluster's registry (decode, capture, and — on
	// a local deployment — shard apply, WAL, query; on a remote one the
	// client call family), then the RPC server's per-op registry.
	c.Telemetry().WritePrometheus(w)
	if h.rpcSrv != nil {
		h.rpcSrv.Telemetry().WritePrometheus(w)
	}
}

// handleSlowOps serves the slow-op ledger as JSON: the active threshold,
// lifetime totals, and the retained entries (oldest first) for the cluster
// pipeline and — when an RPC server is attached — the transport.
func (h *HTTPHandler) handleSlowOps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	c := h.cluster
	if c.closed.Load() {
		http.Error(w, "closed", http.StatusServiceUnavailable)
		return
	}
	type payload struct {
		ThresholdUS int64    `json:"threshold_us"`
		Total       uint64   `json:"total"`
		Ops         []SlowOp `json:"ops"`
		RPCTotal    uint64   `json:"rpc_total,omitempty"`
		RPCOps      []SlowOp `json:"rpc_ops,omitempty"`
	}
	p := payload{
		ThresholdUS: c.SlowOpThreshold().Microseconds(),
		Total:       c.SlowOpsTotal(),
		Ops:         c.SlowOps(),
	}
	if p.Ops == nil {
		p.Ops = []SlowOp{}
	}
	if h.rpcSrv != nil {
		p.RPCTotal = h.rpcSrv.SlowOps().Total()
		p.RPCOps = h.rpcSrv.SlowOps().Snapshot()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}
