package mint_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

func TestExploreUnsampledTrace(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 300)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()

	kind, rendered, ok := cluster.Explore(traces[50].TraceID)
	if !ok {
		t.Fatal("explore must succeed for captured traffic")
	}
	if kind != mint.PartialHit {
		t.Fatalf("unsampled trace should explore approximately, got %v", kind)
	}
	// UC 1: the flame graph keeps the execution path even though the
	// parameters are masked.
	if !strings.Contains(rendered, "frontend") {
		t.Fatalf("flame graph missing entry service:\n%s", rendered)
	}
	if _, _, ok := cluster.Explore("never-captured"); ok {
		t.Fatal("foreign trace IDs still miss")
	}
}

func TestBatchAnalyzeAllRequests(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 400)
	ids := make([]string, 0, len(traces))
	for _, tr := range traces {
		cluster.Capture(tr)
		ids = append(ids, tr.TraceID)
	}
	cluster.Flush()

	stats, misses := cluster.BatchAnalyze(ids)
	if misses != 0 {
		t.Fatalf("UC 2 requires zero misses, got %d", misses)
	}
	if stats.Traces != len(ids) {
		t.Fatalf("aggregated %d of %d traces", stats.Traces, len(ids))
	}
	if stats.Spans <= stats.Traces {
		t.Fatal("batch should aggregate span-level data")
	}
	top := stats.TopServices(3)
	if len(top) != 3 || top[0] != "frontend" {
		t.Fatalf("top services = %v (frontend fronts every request)", top)
	}
	if len(stats.Edges) == 0 {
		t.Fatal("aggregated topology missing")
	}
}

func TestRebuildAfterSystemChange(t *testing.T) {
	sys, cluster := newOBCluster(t, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 200))
	for _, tr := range sim.GenTraces(sys, 300) {
		cluster.Capture(tr)
	}
	cluster.Flush()

	// "System change": rebuild with fresh warmup, then keep capturing.
	recent := sim.GenTraces(sys, 100)
	cluster.Rebuild(recent)
	post := sim.GenTraces(sys, 200)
	for _, tr := range post {
		cluster.Capture(tr)
	}
	cluster.Flush()
	// Traffic captured after the rebuild must be fully queryable.
	for _, tr := range post[:50] {
		if cluster.Query(tr.TraceID).Kind == mint.Miss {
			t.Fatal("post-rebuild capture lost a trace")
		}
	}
}
