package repro

// OTLP front-door ingestion benchmarks: the same Online Boutique workload
// pre-encoded as per-node OTLP export payloads, ingested through the
// protobuf wire walker (pooled decode scratch + interning) and through the
// JSON decoder. The protobuf path's allocs/op is the number under budget in
// CI (tools/benchbudget); the JSON number is the comparison baseline:
//
//	go test -bench='BenchmarkOTLPIngest(Proto|JSON)$' -benchmem
//
// Payloads are grouped per (trace, node) — what one node's SDK exporter
// would batch — so allocs/op is per-payload, a handful of spans each.

import (
	"encoding/hex"
	"testing"

	"repro/internal/sim"
	"repro/mint"
)

// otlpBatch is one pre-encoded export payload and the node it ingests as.
type otlpBatch struct {
	node    string
	payload []byte
}

// benchOTLPSetup builds a warmed cluster and the workload pre-encoded as
// per-node OTLP payloads in the chosen encoding.
func benchOTLPSetup(b *testing.B, proto bool) (*mint.Cluster, []otlpBatch) {
	b.Helper()
	sys := sim.OnlineBoutique(1)
	cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 300))
	traces := sim.GenTraces(sys, 1024)
	// Real OTLP IDs are binary (hex on the query surface); the simulator's
	// readable IDs are not, so re-key them as the hex of their bytes — the
	// same mapping for both encodings, keeping the comparison span-identical.
	hexID := func(s string) string { return hex.EncodeToString([]byte(s)) }
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			sp.TraceID, sp.SpanID = hexID(sp.TraceID), hexID(sp.SpanID)
			if sp.ParentID != "" {
				sp.ParentID = hexID(sp.ParentID)
			}
		}
	}
	var batches []otlpBatch
	for _, tr := range traces {
		byNode := map[string][]*mint.Span{}
		var order []string
		for _, sp := range tr.Spans {
			if _, ok := byNode[sp.Node]; !ok {
				order = append(order, sp.Node)
			}
			byNode[sp.Node] = append(byNode[sp.Node], sp)
		}
		for _, node := range order {
			var payload []byte
			var err error
			if proto {
				payload, err = mint.EncodeOTLPProto(byNode[node])
			} else {
				payload, err = mint.EncodeOTLP(byNode[node])
			}
			if err != nil {
				b.Fatalf("encode: %v", err)
			}
			batches = append(batches, otlpBatch{node: node, payload: payload})
		}
	}
	return cluster, batches
}

// BenchmarkOTLPIngestProto measures the zero-allocation protobuf front
// door: pooled Decoder scratch, interned low-cardinality strings, arena
// spans recycled after capture. Budget-gated in CI.
func BenchmarkOTLPIngestProto(b *testing.B) {
	cluster, batches := benchOTLPSetup(b, true)
	defer cluster.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := batches[i%len(batches)]
		if err := cluster.CaptureOTLPProto(bt.node, bt.payload); err != nil {
			b.Fatalf("CaptureOTLPProto: %v", err)
		}
	}
}

// BenchmarkOTLPIngestJSON is the same workload through the JSON decoder —
// the baseline the protobuf path is measured against (encoding/json
// allocates per span, per attribute and per string).
func BenchmarkOTLPIngestJSON(b *testing.B) {
	cluster, batches := benchOTLPSetup(b, false)
	defer cluster.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt := batches[i%len(batches)]
		if err := cluster.CaptureOTLP(bt.node, bt.payload); err != nil {
			b.Fatalf("CaptureOTLP: %v", err)
		}
	}
}
