// TrainTicket scenario: the paper's second, much deeper benchmark (45
// services, long synchronous call chains). Demonstrates lossless
// compression: the whole corpus is stored as patterns + parameters and a
// sampled trace is reconstructed bit-for-bit.
//
//	go run ./examples/trainticket
package main

import (
	"fmt"

	"repro/internal/logcomp"
	"repro/internal/sim"
	"repro/mint"
)

func main() {
	sys := sim.TrainTicket(7)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{
		// Every trace fully sampled: this example demonstrates Mint as a
		// lossless trace compressor rather than a sampler.
		HeadSampleRate: 1.0,
	})
	cluster.Warmup(sim.GenTraces(sys, 300))

	corpus := sim.GenTraces(sys, 1500)
	var raw int64
	for _, t := range corpus {
		raw += int64(t.Size())
		cluster.Capture(t)
	}
	cluster.Flush()

	fmt.Printf("TrainTicket: %d traces over %d services on %d nodes\n",
		len(corpus), len(sys.ServiceNode), len(sys.Nodes))
	fmt.Printf("raw corpus: %.2f MB\n\n", float64(raw)/1e6)

	// Everything was sampled, so every query reconstructs exactly.
	probe := corpus[700]
	res := cluster.Query(probe.TraceID)
	fmt.Printf("query %s -> %s hit (%d spans, original %d)\n",
		probe.TraceID, res.Kind, len(res.Trace.Spans), len(probe.Spans))
	same := 0
	orig := map[string]string{}
	for _, s := range probe.Spans {
		orig[s.SpanID] = s.Serialize()
	}
	for _, s := range res.Trace.Spans {
		if orig[s.SpanID] == s.Serialize() {
			same++
		}
	}
	fmt.Printf("lossless reconstruction: %d/%d spans byte-identical\n\n", same, len(probe.Spans))

	// Compare Mint's queryable compression against log-compressor
	// baselines on the same corpus (Table 4's experiment, one dataset).
	fmt.Println("compression ratios (higher is better):")
	for _, c := range []logcomp.Compressor{
		logcomp.LogZipLike{},
		logcomp.LogReducerLike{},
		logcomp.CLPLike{},
		logcomp.MintCompressor{DisableSpanParsing: true},
		logcomp.MintCompressor{DisableTraceParsing: true},
		logcomp.MintCompressor{},
	} {
		fmt.Printf("  %-12s %6.2fx\n", c.Name(), logcomp.Ratio(c, corpus))
	}

	fmt.Printf("\npattern libraries: %d span patterns, %d topo patterns for %d traces\n",
		cluster.SpanPatternCount(), cluster.TopoPatternCount(), len(corpus))
}
