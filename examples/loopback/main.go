// Example loopback: the networked deployment in one process. A
// mintd-shaped backend server (sharded, durable, behind the RPC transport)
// listens on a loopback port; a remote cluster dials it, captures a
// simulated OnlineBoutique workload through per-node agents whose reports
// ship over TCP, and answers queries from the server. The server then
// restarts from its data directory to show durability is preserved over
// the wire.
package main

import (
	"fmt"
	"os"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/mint"
)

func main() {
	dir, err := os.MkdirTemp("", "mint-loopback-*")
	if err != nil {
		fail("temp dir", err)
	}
	defer os.RemoveAll(dir)

	// --- the server half: what cmd/mintd assembles ---
	server, err := mint.Open(nil, mint.Config{Shards: 4, DataDir: dir})
	if err != nil {
		fail("open backend", err)
	}
	srv := rpc.NewServer(server.Backend())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fail("listen", err)
	}
	fmt.Printf("backend server on %s (data dir %s)\n", addr, dir)

	// --- the client half: remote agents over mint.Dial ---
	sys := sim.OnlineBoutique(42)
	cluster, err := mint.Dial(addr.String(), sys.Nodes, mint.Defaults())
	if err != nil {
		fail("dial", err)
	}
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 1500)
	var raw int64
	for _, t := range traces {
		raw += int64(t.Size())
		if err := cluster.Capture(t); err != nil {
			fail("capture", err)
		}
	}
	if err := cluster.Flush(); err != nil {
		fail("flush", err)
	}
	fmt.Printf("captured %d traces (%.2f MB raw) through the transport\n", len(traces), float64(raw)/1e6)
	fmt.Printf("server stores %.1f KB across %d span / %d topo patterns\n",
		float64(cluster.StorageBytes())/1e3, cluster.SpanPatternCount(), cluster.TopoPatternCount())

	exact, partial, miss := 0, 0, 0
	for _, t := range traces {
		switch cluster.Query(t.TraceID).Kind {
		case mint.ExactHit:
			exact++
		case mint.PartialHit:
			partial++
		default:
			miss++
		}
	}
	fmt.Printf("remote queries: %d exact, %d partial, %d misses\n", exact, partial, miss)
	if miss != 0 {
		fmt.Println("FAIL: the no-discard guarantee requires zero misses")
		os.Exit(1)
	}

	found := cluster.FindTraces(mint.Filter{Service: "checkout", Candidates: idsOf(traces), Limit: 5})
	fmt.Printf("FindTraces(service=checkout) over the wire: %d matches\n", len(found))

	// --- restart: durability over the wire ---
	if err := cluster.Close(); err != nil { // flushes the server WAL, closes the conn
		fail("close client", err)
	}
	srv.Close()
	if err := server.Close(); err != nil {
		fail("close server", err)
	}

	server2, err := mint.Open(nil, mint.Config{Shards: 2, DataDir: dir})
	if err != nil {
		fail("reopen backend", err)
	}
	defer server2.Close()
	srv2 := rpc.NewServer(server2.Backend())
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		fail("relisten", err)
	}
	defer srv2.Close()
	cluster2, err := mint.Dial(addr2.String(), sys.Nodes, mint.Defaults())
	if err != nil {
		fail("redial", err)
	}
	defer cluster2.Close()

	exact2, partial2 := 0, 0
	for _, t := range traces {
		switch cluster2.Query(t.TraceID).Kind {
		case mint.ExactHit:
			exact2++
		case mint.PartialHit:
			partial2++
		}
	}
	fmt.Printf("after server restart from disk: %d exact, %d partial — ", exact2, partial2)
	if exact2 == exact && partial2 == partial {
		fmt.Println("identical to the pre-restart answers")
	} else {
		fmt.Println("MISMATCH")
		os.Exit(1)
	}
}

func idsOf(traces []*mint.Trace) []string {
	ids := make([]string, len(traces))
	for i, t := range traces {
		ids[i] = t.TraceID
	}
	return ids
}

func fail(what string, err error) {
	fmt.Fprintf(os.Stderr, "loopback: %s: %v\n", what, err)
	os.Exit(1)
}
