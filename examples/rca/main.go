// RCA scenario: reproduce Table 3's story on one incident. A CPU-exhaustion
// fault hits the recommendation service; three trace-based RCA methods
// localize it from (a) the 5% of traces a head sampler kept and (b) the
// all-requests corpus Mint kept. Mint's approximate traces carry enough
// commonality for spectrum analysis even though only symptomatic traces
// were stored exactly.
//
//	go run ./examples/rca
package main

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/baseline"
	"repro/internal/rca"
	"repro/internal/sim"
	"repro/mint"
)

func main() {
	sys := sim.OnlineBoutique(99)
	services := sys.TrafficServices()

	head := baseline.NewOTHead(0.05)
	cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
	cluster.Warmup(sim.GenTraces(sys, 300))

	fault := &sim.Fault{Type: sim.FaultCPU, Service: "recommendation", Magnitude: 300}
	fmt.Printf("injecting %s at %q ...\n\n", fault.Type, fault.Service)

	var captured []string
	capture := func(t *mint.Trace) {
		head.Capture(t)
		cluster.Capture(t)
		captured = append(captured, t.TraceID)
	}
	for i := 0; i < 1200; i++ {
		capture(sys.GenTrace(sys.PickAPI(), sim.GenOptions{}))
	}
	for i := 0; i < 30; i++ {
		capture(sys.GenTrace(sys.PickAPI(), sim.GenOptions{Fault: fault}))
	}
	cluster.Flush()

	mintRetained := make([]*mint.Trace, 0, len(captured))
	for _, id := range captured {
		if r := cluster.Query(id); r.Kind != backend.Miss {
			mintRetained = append(mintRetained, r.Trace)
		}
	}

	datasets := []struct {
		name   string
		traces []*mint.Trace
	}{
		{"OT-Head (5% sample)", head.Retained()},
		{"Mint (all requests)", mintRetained},
	}
	methods := []rca.Method{rca.MicroRank{}, rca.TraceRCA{}, rca.TraceAnomaly{}}

	for _, ds := range datasets {
		p99 := rca.RootDurationP99(ds.traces)
		normal, abnormal := rca.Partition(ds.traces, p99)
		fmt.Printf("%s: %d traces retained (%d normal, %d abnormal)\n",
			ds.name, len(ds.traces), len(normal), len(abnormal))
		d := rca.Dataset{Normal: normal, Abnormal: abnormal, Services: services}
		for _, m := range methods {
			ranking := m.Localize(d)
			top := "—"
			hit := " "
			if len(ranking) > 0 {
				top = ranking[0]
				if top == fault.Service {
					hit = "✓"
				}
			}
			fmt.Printf("  %s %-13s top-1: %s\n", hit, m.Name(), top)
		}
		fmt.Println()
	}
}
