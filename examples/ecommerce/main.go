// E-commerce scenario: run the OnlineBoutique workload (the paper's first
// benchmark) through Mint next to an OpenTelemetry full-collection baseline,
// inject a payment outage, and compare costs and query power.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/sim"
	"repro/mint"
)

func main() {
	sys := sim.OnlineBoutique(2024)
	cluster := mint.NewCluster(sys.Nodes, mint.Defaults())
	full := baseline.NewOTFull()

	warm := sim.GenTraces(sys, 300)
	cluster.Warmup(warm)

	fmt.Println("== phase 1: steady traffic ==")
	for _, t := range sim.GenTraces(sys, 3000) {
		cluster.Capture(t)
		full.Capture(t)
	}
	cluster.Flush()

	fmt.Println("== phase 2: payment service outage ==")
	fault := &sim.Fault{Type: sim.FaultException, Service: "payment", Magnitude: 150}
	var incident []string
	for i := 0; i < 400; i++ {
		opt := sim.GenOptions{}
		if i%20 == 19 { // 5% of requests hit the failing path
			opt.Fault = fault
		}
		t := sys.GenTrace(sys.PickAPI(), opt)
		if opt.Fault != nil {
			incident = append(incident, t.TraceID)
		}
		cluster.Capture(t)
		full.Capture(t)
	}
	cluster.Flush()

	fmt.Printf("\ncost comparison (%d traces):\n", 3400)
	fmt.Printf("  %-22s network %8.2f MB   storage %8.2f MB\n",
		"OpenTelemetry (full):",
		float64(full.NetworkBytes())/1e6, float64(full.StorageBytes())/1e6)
	fmt.Printf("  %-22s network %8.2f MB   storage %8.2f MB\n",
		"Mint:",
		float64(cluster.NetworkBytes())/1e6, float64(cluster.StorageBytes())/1e6)
	fmt.Printf("  reduction: network to %.1f%%, storage to %.1f%%\n",
		100*float64(cluster.NetworkBytes())/float64(full.NetworkBytes()),
		100*float64(cluster.StorageBytes())/float64(full.StorageBytes()))

	fmt.Printf("\nincident forensics — querying the %d failed checkouts:\n", len(incident))
	exact := 0
	for _, id := range incident {
		if cluster.Query(id).Kind == mint.ExactHit {
			exact++
		}
	}
	fmt.Printf("  %d/%d returned exactly (Symptom Sampler caught the errors)\n", exact, len(incident))

	res := cluster.Query(incident[0])
	fmt.Printf("\nfirst failed trace (%s, %s hit):\n", incident[0], res.Kind)
	for _, s := range res.Trace.Spans {
		marker := " "
		if s.Status >= 400 {
			marker = "!"
		}
		fmt.Printf("  %s %-30s %-18s %6.1fms", marker, s.Service+"/"+s.Operation, s.Kind, float64(s.Duration)/1e3)
		if exc := s.Attributes["exception"].Str; exc != "" {
			fmt.Printf("  %s", exc)
		}
		fmt.Println()
	}

	fmt.Println("\npattern economy:")
	fmt.Printf("  %d span patterns and %d topology patterns describe all %d traces\n",
		cluster.SpanPatternCount(), cluster.TopoPatternCount(), 3400)
}
