// Quickstart: build spans by hand, capture them through a two-node Mint
// cluster, and query them back — the smallest end-to-end use of the public
// API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/mint"
)

func main() {
	// A Mint deployment: one agent per application node plus a backend.
	cluster := mint.NewCluster([]string{"node-a", "node-b"}, mint.Defaults())

	// Build traces for a toy two-service system: "web" on node-a calls
	// "db" on node-b. Real deployments generate these spans from
	// instrumentation; the shape is ordinary OpenTelemetry.
	var traces []*mint.Trace
	for i := 0; i < 500; i++ {
		traces = append(traces, makeTrace(i, false))
	}
	// One request fails with an error the Symptom Sampler will catch.
	bad := makeTrace(500, true)
	traces = append(traces, bad)

	// Warm the span parsers offline (the paper's cold-start mitigation),
	// then capture the live traffic.
	cluster.Warmup(traces[:100])
	var rawBytes int
	for _, t := range traces[100:] {
		rawBytes += t.Size()
		cluster.Capture(t)
	}
	cluster.Flush() // periodic pattern/Bloom upload

	fmt.Printf("captured %d traces (%.1f KB raw)\n", len(traces)-100, float64(rawBytes)/1e3)
	fmt.Printf("storage:  %.1f KB (%.1f%% of raw)\n",
		float64(cluster.StorageBytes())/1e3,
		100*float64(cluster.StorageBytes())/float64(rawBytes))
	fmt.Printf("network:  %.1f KB (%.1f%% of raw)\n",
		float64(cluster.NetworkBytes())/1e3,
		100*float64(cluster.NetworkBytes())/float64(rawBytes))

	// Every trace is queryable. Unsampled traces return approximate
	// traces (patterns with masked parameters); the failed trace was
	// sampled, so it returns exactly.
	normal := cluster.Query(traces[200].TraceID)
	fmt.Printf("\nnormal trace  -> %s hit, %d spans\n", normal.Kind, len(normal.Trace.Spans))
	for _, s := range normal.Trace.Spans {
		fmt.Printf("  [%s] %s/%s sql=%q\n", s.Node, s.Service, s.Operation, s.Attributes["sql.query"].Str)
	}

	failed := cluster.Query(bad.TraceID)
	fmt.Printf("\nfailed trace  -> %s hit, %d spans\n", failed.Kind, len(failed.Trace.Spans))
	for _, s := range failed.Trace.Spans {
		fmt.Printf("  [%s] %s/%s status=%d sql=%q\n", s.Node, s.Service, s.Operation, s.Status, s.Attributes["sql.query"].Str)
	}
}

// makeTrace builds one web->db request trace.
func makeTrace(i int, fail bool) *mint.Trace {
	traceID := fmt.Sprintf("demo-%06d", i)
	status := mint.StatusOK
	if fail {
		status = mint.StatusError
	}
	root := &mint.Span{
		TraceID: traceID, SpanID: traceID + "-web", Service: "web", Node: "node-a",
		Operation: "GET /checkout", Kind: mint.KindServer,
		StartUnix: int64(i) * 1000, Duration: 4200 + int64(i%700), Status: status,
		Attributes: map[string]mint.AttrValue{
			"http.url": mint.Str(fmt.Sprintf("/checkout?order=%d", 10000+i)),
		},
	}
	call := &mint.Span{
		TraceID: traceID, SpanID: traceID + "-call", ParentID: root.SpanID,
		Service: "web", Node: "node-a", Operation: "call db/Query", Kind: mint.KindClient,
		StartUnix: root.StartUnix + 500, Duration: 2500, Status: status,
		Attributes: map[string]mint.AttrValue{"peer.service": mint.Str("db")},
	}
	db := &mint.Span{
		TraceID: traceID, SpanID: traceID + "-db", ParentID: call.SpanID,
		Service: "db", Node: "node-b", Operation: "Query", Kind: mint.KindServer,
		StartUnix: root.StartUnix + 700, Duration: 2100, Status: status,
		Attributes: map[string]mint.AttrValue{
			"sql.query": mint.Str(fmt.Sprintf("SELECT * FROM orders WHERE id=%d", 10000+i)),
		},
	}
	if fail {
		db.Attributes["exception"] = mint.Str("db: deadlock detected, transaction aborted")
	}
	return &mint.Trace{TraceID: traceID, Spans: []*mint.Span{root, call, db}}
}
