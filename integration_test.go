package repro

// Cross-module integration tests: full capture→flush→query journeys that
// exercise agent, collector, backend, samplers and the simulator together,
// including the head/tail compatibility adapters of §3.4 and the OTLP
// ingestion path of §4.1.

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/otlp"
	"repro/internal/rca"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/mint"
)

func TestEndToEndAllRequestsJourney(t *testing.T) {
	sys := sim.TrainTicket(1001)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512})
	cluster.Warmup(sim.GenTraces(sys, 300))

	services := sys.TrafficServices()
	var all, abnormal []string
	for day := 0; day < 3; day++ {
		for i := 0; i < 400; i++ {
			opt := sim.GenOptions{}
			if i%40 == 39 {
				opt.Fault = sim.RandomFault(sys.RNG(), services)
			}
			tr := sys.GenTrace(sys.PickAPI(), opt)
			cluster.Capture(tr)
			all = append(all, tr.TraceID)
			if opt.Fault != nil {
				abnormal = append(abnormal, tr.TraceID)
			}
		}
		cluster.Flush() // one periodic upload per simulated day
	}

	// Claim 1: no captured trace ever misses.
	miss := 0
	for _, id := range all {
		if cluster.Query(id).Kind == mint.Miss {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("%d misses of %d captured traces", miss, len(all))
	}

	// Claim 2: batch analysis covers all requests.
	stats, misses := cluster.BatchAnalyze(all)
	if misses != 0 || stats.Traces != len(all) {
		t.Fatalf("batch covered %d/%d (misses %d)", stats.Traces, len(all), misses)
	}

	// Claim 3: storage and network both land far below raw.
	var raw int64
	for _, id := range all {
		_ = id
	}
	// Regenerate raw estimate from a same-seed system to avoid retaining
	// the corpus: use measured average instead.
	avg := int64(0)
	sys2 := sim.TrainTicket(1001)
	for _, tr := range sim.GenTraces(sys2, 100) {
		avg += int64(tr.Size())
	}
	avg /= 100
	raw = avg * int64(len(all))
	if cluster.StorageBytes() > raw/4 {
		t.Fatalf("storage %d not far below raw %d", cluster.StorageBytes(), raw)
	}
	if cluster.NetworkBytes() > raw/4 {
		t.Fatalf("network %d not far below raw %d", cluster.NetworkBytes(), raw)
	}
	_ = abnormal
}

func TestHeadSamplingAdapterParity(t *testing.T) {
	// §3.4: "Users can adopt head sampling by randomly marking some traces
	// as sampled when requests are generated." Mint with HeadSampleRate
	// must make head-sampled traces exact and everything else partial.
	sys := sim.OnlineBoutique(1002)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{
		BloomBufferBytes: 512,
		HeadSampleRate:   0.2,
		DisableSamplers:  true,
	})
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 500)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	cluster.Flush()
	exact, partial := 0, 0
	for _, tr := range traces {
		switch cluster.Query(tr.TraceID).Kind {
		case mint.ExactHit:
			exact++
		case mint.PartialHit:
			partial++
		default:
			t.Fatalf("miss for %s", tr.TraceID)
		}
	}
	rate := float64(exact) / float64(len(traces))
	if rate < 0.12 || rate > 0.28 {
		t.Fatalf("exact rate %f, want ≈0.2 (head rate)", rate)
	}
	if partial == 0 {
		t.Fatal("unsampled traces must answer partially")
	}
}

func TestTailSamplingAdapter(t *testing.T) {
	// §3.4's other adapter: mark traces as sampled from the backend after
	// the fact (retroactive marking via MarkSampled). Params must still be
	// in the agents' buffers when the notice arrives.
	sys := sim.OnlineBoutique(1003)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512, DisableSamplers: true})
	cluster.Warmup(sim.GenTraces(sys, 200))
	traces := sim.GenTraces(sys, 200)
	for _, tr := range traces {
		cluster.Capture(tr)
	}
	// Backend-side tail decision: keep every 10th trace.
	var chosen []string
	for i := 9; i < len(traces); i += 10 {
		cluster.MarkSampled(traces[i].TraceID, "tail")
		chosen = append(chosen, traces[i].TraceID)
	}
	cluster.Flush()
	for _, id := range chosen {
		if got := cluster.Query(id).Kind; got != mint.ExactHit {
			t.Fatalf("tail-marked trace %s returned %v", id, got)
		}
	}
}

func TestOTLPIngestionPath(t *testing.T) {
	sys := sim.OnlineBoutique(1004)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512})
	cluster.Warmup(sim.GenTraces(sys, 200))

	// Export each node's sub-trace as OTLP/JSON and ingest through the
	// protocol adapter instead of Capture.
	traces := sim.GenTraces(sys, 100)
	for _, tr := range traces {
		for node, spans := range tr.ByNode() {
			payload, err := otlp.Encode(spans)
			if err != nil {
				t.Fatal(err)
			}
			if err := cluster.CaptureOTLP(node, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	cluster.Flush()
	for _, tr := range traces[:20] {
		if cluster.Query(tr.TraceID).Kind == mint.Miss {
			t.Fatalf("OTLP-ingested trace %s missed", tr.TraceID)
		}
	}
	if err := cluster.CaptureOTLP("no-such-node", []byte(`{}`)); err == nil {
		t.Fatal("unknown node must error")
	}
	if err := cluster.CaptureOTLP(sys.Nodes[0], []byte(`{bad`)); err == nil {
		t.Fatal("malformed payload must error")
	}
}

func TestRCAPipelineEndToEnd(t *testing.T) {
	// The Table 3 journey distilled: Mint's retained corpus lets MicroRank
	// find an injected fault that head sampling misses.
	sys := sim.OnlineBoutique(1005)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512})
	head := baseline.NewOTHead(0.05)
	cluster.Warmup(sim.GenTraces(sys, 200))

	fault := &sim.Fault{Type: sim.FaultErrorReturn, Service: "shipping", Magnitude: 50}
	var ids []string
	capture := func(tr *trace.Trace) {
		cluster.Capture(tr)
		head.Capture(tr)
		ids = append(ids, tr.TraceID)
	}
	for i := 0; i < 800; i++ {
		capture(sys.GenTrace(sys.PickAPI(), sim.GenOptions{}))
	}
	hit := 0
	for i := 0; hit < 15 && i < 200; i++ {
		tr := sys.GenTrace(sys.PickAPI(), sim.GenOptions{Fault: fault})
		for _, s := range tr.Spans {
			if s.Service == fault.Service {
				hit++
				break
			}
		}
		capture(tr)
	}
	cluster.Flush()

	var mintCorpus []*trace.Trace
	for _, id := range ids {
		if r := cluster.Query(id); r.Kind != mint.Miss {
			mintCorpus = append(mintCorpus, r.Trace)
		}
	}
	localize := func(corpus []*trace.Trace) string {
		p99 := rca.RootDurationP99(corpus)
		normal, abnormal := rca.Partition(corpus, p99)
		d := rca.Dataset{Normal: normal, Abnormal: abnormal, Services: sys.TrafficServices()}
		ranking := rca.MicroRank{}.Localize(d)
		if len(ranking) == 0 {
			return ""
		}
		return ranking[0]
	}
	if got := localize(mintCorpus); got != fault.Service {
		t.Fatalf("Mint corpus localized %q, want %q", got, fault.Service)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() (int64, int64, int) {
		sys := sim.OnlineBoutique(777)
		cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 512})
		cluster.Warmup(sim.GenTraces(sys, 200))
		for _, tr := range sim.GenTraces(sys, 400) {
			cluster.Capture(tr)
		}
		cluster.Flush()
		return cluster.NetworkBytes(), cluster.StorageBytes(), cluster.SpanPatternCount()
	}
	n1, s1, p1 := run()
	n2, s2, p2 := run()
	if n1 != n2 || s1 != s2 || p1 != p2 {
		t.Fatalf("non-deterministic pipeline: (%d,%d,%d) vs (%d,%d,%d)", n1, s1, p1, n2, s2, p2)
	}
}

func TestBloomFalsePositiveToleranceAtScale(t *testing.T) {
	// With many patterns and filters, a foreign trace ID may false-positive
	// into some filter; the query must stay structurally sane (a partial
	// hit over stitched candidates or a miss — never a panic or an exact).
	sys := sim.OnlineBoutique(1006)
	cluster := mint.NewCluster(sys.Nodes, mint.Config{BloomBufferBytes: 128})
	cluster.Warmup(sim.GenTraces(sys, 200))
	for _, tr := range sim.GenTraces(sys, 2000) {
		cluster.Capture(tr)
	}
	cluster.Flush()
	exactForeign := 0
	for i := 0; i < 2000; i++ {
		res := cluster.Query(fmt.Sprintf("foreign-%08d", i))
		if res.Kind == mint.ExactHit {
			exactForeign++
		}
	}
	if exactForeign != 0 {
		t.Fatalf("%d foreign IDs returned exact hits", exactForeign)
	}
}
